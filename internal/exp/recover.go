package exp

// Experiment F2: reliable delivery under faults. F1 measures what the
// tuned trees deliver with no help — past a few percent dead links
// almost every run loses some destination. F2 reruns the same seeded
// fault plans through the recovery layer (internal/recover: per-send
// timeout + retransmit, OPT-tree repair over the surviving chain,
// binomial fallback) and reports the cost of completing anyway: the
// completion latency, the fraction of destinations delivered next to
// the graph-reachability ceiling, and the retransmission overhead.

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/fault"
	"repro/internal/model"
	recov "repro/internal/recover"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/wormhole"
)

// F2Tables bundles the three views of experiment F2 over one sweep.
type F2Tables struct {
	// Latency is completion latency (last successful delivery) vs % dead
	// links. Unlike F1, every run contributes: there are no failed runs
	// to exclude, only abandoned (provably cut off) destinations, which
	// do not extend the latency.
	Latency *Table
	// Delivered is the delivered fraction of destinations (percent) next
	// to the reachability-oracle ceiling per fabric — the headline claim
	// is that the two sets of curves coincide.
	Delivered *Table
	// Overhead is the recovery premium per run: retransmits + repair
	// sends + orphan sends, the messages a fault-free execution would
	// not have sent.
	Overhead *Table
}

// recoverCell builds the engine cell for one reliable-delivery run on a
// degraded fabric. Every recover cell also evaluates the reachability
// oracle on its fault plan and placement — it is a pure function of the
// same key inputs and cheap next to the flit simulation — so the cell
// payload is uniform no matter which figure requested it; the merge
// reads the oracle only from each suite's first column.
func (s *Suite) recoverCell(a Algorithm, k, bytes, trial, pct int, planSeed, recSeed uint64, thold, tend model.Time) runner.Cell {
	return runner.Cell{
		Key: runner.Key{
			Mode: "recover", Platform: s.Platform.Name, Algo: a.keyID(), Soft: s.softKey(),
			K: k, Bytes: bytes, Trial: trial, Seed: s.Seed, AddrBytes: s.AddrBytes,
			THold: thold, TEnd: tend, FaultSeed: planSeed, DeadPct: pct, RecSeed: recSeed,
		},
		Run: func() (runner.Result, error) {
			net := s.Platform.NewNet()
			var fp *fault.Plan
			if pct > 0 {
				fp = fault.MustPlan(net.Topology(), fault.Spec{
					DeadFrac: float64(pct) / 100,
					Seed:     planSeed,
				})
				net.SetFaults(fp)
			}
			addrs := s.placement(trial, k)
			ch := chain.New(addrs, s.Platform.Less)
			root, ok := ch.Index(addrs[0])
			if !ok {
				return runner.Result{}, fmt.Errorf("exp: source %d not in chain", addrs[0])
			}
			tab := a.Table(len(ch), thold, tend)
			res, err := recov.Run(net, tab, ch, root, bytes, recov.Config{
				Sim:  s.runConfig(),
				TEnd: tend,
				Seed: recSeed,
			})
			if err != nil {
				return runner.Result{}, err
			}
			fallback := 0.0
			if res.FallbackAt >= 0 {
				fallback = 1
			}
			// Oracle: the 0% row has no plan — pass a nil interface, not a
			// typed-nil *fault.Plan.
			var fm wormhole.FaultModel
			if fp != nil {
				fm = fp
			}
			n := 0
			for _, ok := range recov.Reachable(net.Topology(), fm, ch, root) {
				if ok {
					n++
				}
			}
			oh := res.Overhead
			return runner.Result{Metrics: map[string]float64{
				"latency":   float64(res.Latency),
				"delivered": float64(res.Delivered),
				"abandoned": float64(res.Abandoned),
				"overhead":  float64(oh.Retransmits + oh.RepairSends + oh.OrphanSends),
				"fallback":  fallback,
				"reach":     100 * float64(n-1) / float64(len(ch)-1),
			}}, nil
		},
	}
}

// RecoverSweep runs experiment F2: the F1 fault sweep with the recovery
// layer turned on. Fault plans use the same per-(row, trial) seed
// formula as FaultSweep, so the two experiments face identical dead-link
// sets and their tables are directly comparable. pcts are the x values
// (percent of fabric-internal links made dead, each in [0,100]).
func RecoverSweep(meshSuite, bminSuite *Suite, k, bytes int, pcts []int, faultSeed uint64) (*F2Tables, error) {
	for _, p := range pcts {
		if p < 0 || p > 100 {
			return nil, fmt.Errorf("exp: fault percentage %d outside [0,100]", p)
		}
	}
	type column struct {
		suite *Suite
		algo  Algorithm
	}
	cols := []column{
		{meshSuite, Binomial("U-mesh")},
		{meshSuite, Opt("OPT-mesh")},
		{bminSuite, Binomial("U-min")},
		{bminSuite, Opt("OPT-min")},
	}
	trials := meshSuite.Trials
	if trials <= 0 {
		trials = 16
	}

	newTable := func(title, ylabel string, algos []string) *Table {
		return &Table{
			Title:      title,
			XLabel:     "failed links (%)",
			YLabel:     ylabel,
			Algorithms: algos,
		}
	}
	algoNames := make([]string, len(cols))
	for i, c := range cols {
		algoNames[i] = c.algo.Name
	}
	f2 := &F2Tables{
		Latency: newTable(
			fmt.Sprintf("F2a: completion latency under recovery vs %% failed links (k=%d, %d-byte messages)", k, bytes),
			"completion latency (cycles, mean over all runs)", algoNames),
		Delivered: newTable(
			fmt.Sprintf("F2b: delivered fraction under recovery vs %% failed links (k=%d, %d-byte messages)", k, bytes),
			"destinations delivered (%, vs reachability-oracle ceiling)",
			append(append([]string{}, algoNames...), "reachable (mesh)", "reachable (BMIN)")),
		Overhead: newTable(
			fmt.Sprintf("F2c: recovery overhead vs %% failed links (k=%d, %d-byte messages)", k, bytes),
			"extra messages per run (retransmits + repair sends + orphan sends, mean)", algoNames),
	}

	// Healthy-fabric calibration, once per suite (as in F1: the tree is
	// planned for the machine as specified, then recovered on the
	// degraded one).
	tends := make([]model.Time, len(cols))
	for i, c := range cols {
		if i > 0 && cols[i-1].suite == c.suite {
			tends[i] = tends[i-1]
			continue
		}
		te, err := c.suite.MeasureTEnd(bytes)
		if err != nil {
			return nil, err
		}
		tends[i] = te
		note := fmt.Sprintf("healthy calibration on %s: t_hold(%dB)=%d t_end(%dB)=%d",
			c.suite.Platform.Name, bytes, c.suite.Software.Hold.At(bytes), bytes, te)
		f2.Latency.Notes = append(f2.Latency.Notes, note)
	}
	f2.Latency.Notes = append(f2.Latency.Notes, fmt.Sprintf("%d random placements per point, placement seed %d, fault seed %d (same plans as F1)",
		trials, meshSuite.Seed, faultSeed))
	f2.Delivered.Notes = append(f2.Delivered.Notes,
		"reachable columns are the graph-reachability oracle (recover.Reachable) on the same fault plans;",
		"delivered ~= reachable means recovery completes whenever a route exists")

	type job struct{ pi, ci, trial int }
	var jobs []job
	var cells []runner.Cell
	for pi, pct := range pcts {
		for ci, c := range cols {
			for tr := 0; tr < trials; tr++ {
				jobs = append(jobs, job{pi, ci, tr})
				planSeed := faultPlanSeed(faultSeed, pi, tr)
				cells = append(cells, c.suite.recoverCell(c.algo, k, bytes, tr, pct,
					planSeed, planSeed+uint64(ci)*0xc2b2ae35,
					c.suite.Software.Hold.At(bytes), tends[ci]))
			}
		}
	}
	results, have, err := meshSuite.exec().Run(f2.Latency.Title, cells)
	if err != nil {
		return nil, err
	}
	if runner.Missing(have) > 0 {
		f2.Latency.Incomplete = true
		f2.Delivered.Incomplete = true
		f2.Overhead.Incomplete = true
		return f2, nil
	}

	type agg struct {
		lat, frac, over sim.Stats
		fallbacks       int
	}
	aggs := make([]agg, len(pcts)*len(cols))
	oracle := make([]sim.Stats, len(pcts)*2) // (row, suite) reachable fraction
	for i, j := range jobs {
		a := &aggs[j.pi*len(cols)+j.ci]
		res := &results[i]
		a.lat.Add(res.Metric("latency"))
		delivered, abandoned := res.Metric("delivered"), res.Metric("abandoned")
		a.frac.Add(100 * delivered / (delivered + abandoned))
		a.over.Add(res.Metric("overhead"))
		if res.Metric("fallback") != 0 {
			a.fallbacks++
		}
		if j.ci == 0 || cols[j.ci-1].suite != cols[j.ci].suite {
			si := 0
			if cols[j.ci].suite != meshSuite {
				si = 1
			}
			oracle[j.pi*2+si].Add(res.Metric("reach"))
		}
	}
	f2.Latency.Rows = make([]Row, len(pcts))
	f2.Delivered.Rows = make([]Row, len(pcts))
	f2.Overhead.Rows = make([]Row, len(pcts))
	for pi, p := range pcts {
		latRow := Row{X: float64(p), Cells: make([]Cell, len(cols))}
		delRow := Row{X: float64(p), Cells: make([]Cell, len(cols)+2)}
		ovrRow := Row{X: float64(p), Cells: make([]Cell, len(cols))}
		for ci := range cols {
			a := &aggs[pi*len(cols)+ci]
			latRow.Cells[ci] = Cell{Mean: a.lat.Mean(), CI95: a.lat.CI95(), N: a.lat.N()}
			delRow.Cells[ci] = Cell{Mean: a.frac.Mean(), CI95: a.frac.CI95(), N: a.frac.N()}
			ovrRow.Cells[ci] = Cell{Mean: a.over.Mean(), CI95: a.over.CI95(), N: a.over.N()}
			if a.fallbacks > 0 {
				f2.Overhead.Notes = append(f2.Overhead.Notes, fmt.Sprintf("%s at %d%%: %d/%d runs fell back to binomial over survivors",
					cols[ci].algo.Name, p, a.fallbacks, trials))
			}
		}
		for si := 0; si < 2; si++ {
			o := &oracle[pi*2+si]
			delRow.Cells[len(cols)+si] = Cell{Mean: o.Mean(), CI95: o.CI95(), N: o.N()}
		}
		f2.Latency.Rows[pi] = latRow
		f2.Delivered.Rows[pi] = delRow
		f2.Overhead.Rows[pi] = ovrRow
	}
	return f2, nil
}
