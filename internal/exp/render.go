package exp

import (
	"fmt"
	"strings"
)

// Format renders the table as aligned text, one row per x value, one
// "mean±ci" column per algorithm, suitable for terminals and EXPERIMENTS
// records.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "y: %s\n", t.YLabel)

	headers := append([]string{t.XLabel}, t.Algorithms...)
	cells := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		row := make([]string, 0, len(headers))
		row = append(row, trimFloat(r.X))
		for _, c := range r.Cells {
			if c.CI95 > 0 {
				row = append(row, fmt.Sprintf("%.0f ±%.0f", c.Mean, c.CI95))
			} else {
				row = append(row, fmt.Sprintf("%.0f", c.Mean))
			}
		}
		cells[i] = row
	}

	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range cells {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row:
// x, then mean/ci95/blocked columns per algorithm.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.XLabel))
	for _, a := range t.Algorithms {
		fmt.Fprintf(&b, ",%s,%s,%s", csvEscape(a+" mean"), csvEscape(a+" ci95"), csvEscape(a+" blocked"))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(trimFloat(r.X))
		for _, c := range r.Cells {
			fmt.Fprintf(&b, ",%g,%g,%g", c.Mean, c.CI95, c.Blocked)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// Column returns the series (x, mean) for one algorithm, for programmatic
// consumers and tests.
func (t *Table) Column(algo string) (xs, means []float64, ok bool) {
	idx := -1
	for i, a := range t.Algorithms {
		if a == algo {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, nil, false
	}
	for _, r := range t.Rows {
		xs = append(xs, r.X)
		means = append(means, r.Cells[idx].Mean)
	}
	return xs, means, true
}

// BlockedColumn returns the contention series for one algorithm.
func (t *Table) BlockedColumn(algo string) (xs, blocked []float64, ok bool) {
	idx := -1
	for i, a := range t.Algorithms {
		if a == algo {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, nil, false
	}
	for _, r := range t.Rows {
		xs = append(xs, r.X)
		blocked = append(blocked, r.Cells[idx].Blocked)
	}
	return xs, blocked, true
}
