package traffic

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/mcastsim"
	"repro/internal/plan"
	recov "repro/internal/recover"
	"repro/internal/sim"
	"repro/internal/wormhole"
)

// xfer is one delivery assignment of one request: from must get the
// message to to, which then becomes responsible for the ascending chain
// positions live (to included). It survives retransmissions; seq
// invalidates deadline and injection events of superseded issues —
// exactly the internal/recover discipline, carried per request.
type xfer struct {
	rs       *reqState
	from, to int
	live     []int
	attempt  int
	seq      int
	worm     *wormhole.Worm
	done     bool
}

// reqState tracks one request through admission, service and completion.
type reqState struct {
	req         *request
	start, done int64 // -1 until the event happens
	delivered   []bool
	resolved    int // delivered + abandoned chain positions
	abandoned   int
	shed        bool
}

type engine struct {
	net    *wormhole.Network
	cfg    Config
	events *sim.EventQueue
	rng    *sim.RNG // reliable-mode backoff jitter
	states []*reqState

	// One-port ledger per fabric node: when each node's send port frees
	// up. Shared across all in-flight requests, so overlapping multicasts
	// serialize their software sends on a common CPU timeline — the
	// open-system generalization of mcastsim's per-run t_hold spacing.
	portFree []int64

	inflight  int
	queue     []*reqState
	shedCount int

	// Tuner-mode split-table cache, keyed by the policy's algorithm
	// index plus the workload point (the static path caches per
	// (k, bytes) in genRequests instead).
	tabs map[planKey]core.SplitTable

	occ       sim.TimeWeighted
	warmStart int64

	// Reliable-mode machinery.
	reach       []int8 // nodes*nodes Routable cache: 0 unknown, 1 yes, -1 no
	unBuf       []*wormhole.Worm
	retransmits int64
	repairSends int64
	cancelled   int64

	runErr error
}

// Run executes one open-system traffic run on net, which must be a
// freshly idle fabric (optionally carrying a fault plan, which requires
// Reliable mode). It returns per-request records plus steady-state
// metrics; errors are reserved for misconfiguration, fabric errors in
// plain mode, and safety-net exhaustion.
func Run(net *wormhole.Network, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	nodes := net.Topology().NumNodes()
	if err := cfg.validate(nodes); err != nil {
		return Result{}, err
	}
	if err := net.Quiesced(); err != nil {
		return Result{}, fmt.Errorf("traffic: fabric not idle: %w", err)
	}
	if net.Faults() != nil && !cfg.Reliable {
		return Result{}, fmt.Errorf("traffic: fabric carries a fault plan; Reliable mode is required")
	}

	t0 := net.Now()
	reqs := genRequests(cfg, nodes)
	e := &engine{
		net:      net,
		cfg:      cfg,
		events:   new(sim.EventQueue),
		rng:      sim.NewRNG(cfg.Seed ^ seedBackoff),
		states:   make([]*reqState, len(reqs)),
		portFree: make([]int64, nodes),
	}
	if cfg.Reliable {
		e.reach = make([]int8, nodes*nodes)
	}
	if cfg.Tuner != nil {
		e.tabs = make(map[planKey]core.SplitTable)
	}
	e.warmStart = t0 + reqs[cfg.Warmup].arrive
	// The occupancy marker is scheduled before any arrival, so at the
	// warm-start cycle it observes the in-service count before that
	// cycle's admissions mutate it.
	e.events.At(e.warmStart, func() { e.occ.Set(e.warmStart, float64(e.inflight)) })
	for i, rq := range reqs {
		rs := &reqState{req: rq, start: -1, done: -1}
		e.states[i] = rs
		at := t0 + rq.arrive
		e.events.At(at, func() { e.arrive(rs, at) })
	}

	max := cfg.MaxCycles
	if max <= 0 {
		max = e.defaultMaxCycles(reqs, t0)
	}
	deadline := t0 + max
	wd := mcastsim.NewWatchdog(net, mcastsim.Config{NoProgressCycles: cfg.NoProgressCycles})
	startStats := net.Stats()

	for e.runErr == nil && (e.events.Len() > 0 || net.Active() > 0) {
		if net.Active() == 0 {
			if next := e.events.NextTime(); next > net.Now() {
				net.AdvanceTo(next)
			}
			wd.Idled()
		}
		e.events.RunDue(net.Now())
		if e.runErr != nil || (net.Active() == 0 && e.events.Len() == 0) {
			break
		}
		if net.Active() > 0 {
			// Step the fabric, but never past the next engine event (an
			// arrival, injection or deadline must fire at its exact cycle)
			// or the safety-net check.
			limit := deadline + 1
			if limit <= net.Now() {
				limit = net.Now() + 1
			}
			if e.events.Len() > 0 && e.events.NextTime() < limit {
				limit = e.events.NextTime()
			}
			net.StepUntil(limit)
			if cfg.Reliable {
				e.reclaimFrozen()
				if err := net.Err(); err != nil {
					return Result{}, fmt.Errorf("traffic: %w; %s", err, net.DeadlockReport(8))
				}
			} else if err := wd.Check(); err != nil {
				return Result{}, fmt.Errorf("traffic: %w", err)
			}
			if net.Now() > deadline {
				return Result{}, fmt.Errorf("traffic: run not complete after %d cycles; %s", max, net.DeadlockReport(8))
			}
		}
	}
	if e.runErr != nil {
		return Result{}, e.runErr
	}
	if err := net.Quiesced(); err != nil {
		return Result{}, fmt.Errorf("traffic: fabric did not quiesce: %w", err)
	}
	for _, rs := range e.states {
		if !rs.shed && rs.done < 0 {
			return Result{}, fmt.Errorf("traffic: request %d admitted but never completed", rs.req.id)
		}
	}
	return e.collect(t0, startStats), nil
}

// defaultMaxCycles derives the safety-net deadline: the arrival span
// plus a generous per-request service bound (the mcastsim formula,
// widened by the recovery worst case in Reliable mode) for every
// request serialized end to end.
func (e *engine) defaultMaxCycles(reqs []*request, t0 int64) int64 {
	var maxK, maxBytes int
	var maxSoft, maxAssign int64
	for _, k := range e.cfg.Load.Ks {
		if k > maxK {
			maxK = k
		}
	}
	for _, b := range e.cfg.Load.Sizes {
		if b > maxBytes {
			maxBytes = b
		}
		soft := e.cfg.Software.Send.At(b) + e.cfg.Software.Recv.At(b) + e.cfg.Software.Hold.At(b)
		if soft > maxSoft {
			maxSoft = soft
		}
		tEnd := int64(e.cfg.TEnd(b))
		assign := (tEnd*reliableSlack + (tEnd/backoffDivisor+1)<<7) * (reliableRetries + 1)
		if assign > maxAssign {
			maxAssign = assign
		}
	}
	perMsg := int64(e.net.Config().Flits(maxBytes+e.cfg.AddrBytes*maxK)) + int64(e.net.Topology().NumChannels())
	perReq := (perMsg+maxSoft+1024)*int64(maxK+1)*4 + 1<<12
	if e.cfg.Reliable {
		perReq += int64(maxK+2) * int64(maxK+2) * maxAssign
	}
	span := reqs[len(reqs)-1].arrive
	return span + perReq*int64(len(reqs)+1) + 1<<20
}

// fault records the first internal error; the drive loop stops on it.
func (e *engine) fault(err error) {
	if e.runErr == nil {
		e.runErr = err
	}
}

// noteOcc records an in-service count change for the time-weighted
// occupancy, once the measurement window is open.
func (e *engine) noteOcc(t int64) {
	if t >= e.warmStart && e.occ.Started() {
		e.occ.Set(t, float64(e.inflight))
	}
}

// arrive admits, queues or sheds one request at its arrival cycle.
func (e *engine) arrive(rs *reqState, t int64) {
	if e.inflight < e.cfg.Admit.MaxInFlight {
		e.begin(rs, t)
		return
	}
	if e.cfg.Admit.Policy == AdmissionBounded && len(e.queue) >= e.cfg.Admit.QueueCap {
		rs.shed = true
		e.shedCount++
		return
	}
	e.queue = append(e.queue, rs)
}

// planKey indexes the tuner-mode split-table cache.
type planKey struct{ algo, k, bytes int }

// resolve asks the admission-time policy which algorithm to run rs
// with and builds the request's chain, root and split table from the
// returned Choice. It fires at the service-start cycle, so a policy
// that has shifted its crossover since the request was generated picks
// the algorithm that is best *now*.
func (e *engine) resolve(rs *reqState, t int64) {
	rq := rs.req
	c := e.cfg.Tuner.Choose(t, rq.k, rq.bytes)
	rq.algo = c.Algo
	if c.Ordered && e.cfg.Less != nil {
		rq.ch = chain.New(rq.addrs, e.cfg.Less)
	} else {
		rq.ch = chain.Unordered(rq.addrs)
	}
	rq.root, _ = rq.ch.Index(rq.addrs[0])
	pk := planKey{c.Algo, rq.k, rq.bytes}
	tab, ok := e.tabs[pk]
	if !ok {
		tab = c.Plan(rq.k, rq.tHold, e.cfg.TEnd(rq.bytes))
		e.tabs[pk] = tab
	}
	rq.tab = tab
}

// begin moves a request into service: the source "delivers" to itself
// with responsibility for the whole chain, which schedules its sends.
func (e *engine) begin(rs *reqState, t int64) {
	rs.start = t
	if e.cfg.Tuner != nil {
		e.resolve(rs, t)
	}
	rs.delivered = make([]bool, len(rs.req.ch))
	e.inflight++
	e.noteOcc(t)
	all := make([]int, len(rs.req.ch))
	for i := range all {
		all[i] = i
	}
	e.deliver(rs, rs.req.root, all, t)
}

// deliver records that chain position self of rs has the message (with
// responsibility for live) at time t, schedules its sends, and closes
// the request out when every position is resolved.
func (e *engine) deliver(rs *reqState, self int, live []int, t int64) {
	if rs.delivered[self] {
		e.fault(fmt.Errorf("traffic: duplicate delivery to request %d chain position %d", rs.req.id, self))
		return
	}
	rs.delivered[self] = true
	rs.resolved++
	if len(live) > 1 {
		e.spawn(rs, self, live, t, false)
	}
	e.maybeComplete(rs, t)
}

// spawn plans self's sends for the live positions and issues them.
// repair marks give-up re-plans (counted separately).
func (e *engine) spawn(rs *reqState, self int, live []int, t int64, repair bool) {
	sends, err := plan.RepairSends(rs.req.tab, live, self)
	if err != nil {
		e.fault(err)
		return
	}
	for _, snd := range sends {
		if repair {
			e.repairSends++
		}
		e.issue(&xfer{rs: rs, from: self, to: snd.To, live: snd.Live}, t)
	}
}

// issue schedules one transmission of x no earlier than notBefore,
// serialized behind every other send of the same fabric node via the
// shared port ledger, and — in Reliable mode — arms its delivery
// deadline.
func (e *engine) issue(x *xfer, notBefore int64) {
	node := x.rs.req.ch[x.from]
	at := notBefore
	if nf := e.portFree[node]; nf > at {
		at = nf
	}
	e.portFree[node] = at + x.rs.req.tHold
	x.seq++
	seq := x.seq
	e.events.At(at+x.rs.req.tSend, func() { e.inject(x, seq) })
	if e.cfg.Reliable {
		e.events.At(at+x.rs.req.timeout, func() { e.expire(x, seq) })
	}
}

// inject hands x's message to the fabric (software send cost elapsed).
func (e *engine) inject(x *xfer, seq int) {
	if x.done || x.seq != seq {
		return
	}
	rq := x.rs.req
	bytes := rq.bytes + e.cfg.AddrBytes*(len(x.live)-1)
	x.worm = e.net.Send(nodeOf(rq.ch[x.from]), nodeOf(rq.ch[x.to]), bytes, x, func(_ *wormhole.Worm, now int64) {
		x.done = true
		x.worm = nil
		e.events.At(now+rq.tRecv, func() { e.deliver(x.rs, x.to, x.live, now+rq.tRecv) })
	})
}

// expire fires at x's delivery deadline (Reliable mode only).
func (e *engine) expire(x *xfer, seq int) {
	if x.done || x.seq != seq {
		return
	}
	e.fail(x, false)
}

// reclaimFrozen cancels worms the fault layer froze (no live route) and
// routes their assignments into the retry/give-up path immediately.
func (e *engine) reclaimFrozen() {
	e.unBuf = e.net.Unreachable(e.unBuf[:0])
	for _, w := range e.unBuf {
		x, ok := w.Tag.(*xfer)
		if !ok {
			e.fault(fmt.Errorf("traffic: frozen worm %d carries foreign tag %T", w.ID, w.Tag))
			return
		}
		e.fail(x, true)
	}
}

// fail handles a lost send: withdraw the worm, then retry with the
// shared backoff schedule or give the destination up — the
// internal/recover policy with its default budget.
func (e *engine) fail(x *xfer, frozen bool) {
	if x.worm != nil {
		e.net.Cancel(x.worm)
		e.cancelled++
		x.worm = nil
	}
	x.seq++
	now := e.net.Now()
	give := x.attempt >= reliableRetries
	if frozen && !e.routable(x.rs.req.ch[x.from], x.rs.req.ch[x.to]) {
		give = true
	}
	if give {
		e.giveUp(x, now)
		return
	}
	x.attempt++
	e.retransmits++
	e.issue(x, now+recov.Backoff(x.rs.req.backoffBase, x.attempt, e.rng))
}

// giveUp abandons x's destination and re-plans the rest of its subtree
// from the same sender (subtree re-adoption: the sender joins the
// surviving live list in chain order and re-runs the split over it).
func (e *engine) giveUp(x *xfer, now int64) {
	rs := x.rs
	rs.abandoned++
	rs.resolved++
	rest := make([]int, 0, len(x.live)-1)
	for _, p := range x.live {
		if p != x.to {
			rest = append(rest, p)
		}
	}
	if len(rest) > 0 {
		e.spawn(rs, x.from, insertSorted(rest, x.from), now, true)
	}
	e.maybeComplete(rs, now)
}

// routable answers the idle-fabric oracle for a fabric-node pair, cached
// per run.
func (e *engine) routable(from, to int) bool {
	idx := from*e.net.Topology().NumNodes() + to
	if v := e.reach[idx]; v != 0 {
		return v > 0
	}
	ok := recov.Routable(e.net.Topology(), e.net.Faults(), nodeOf(from), nodeOf(to))
	if ok {
		e.reach[idx] = 1
	} else {
		e.reach[idx] = -1
	}
	return ok
}

// maybeComplete closes a request once every chain position is delivered
// or abandoned, frees its service slot, and starts the next queued
// request at the same cycle.
func (e *engine) maybeComplete(rs *reqState, t int64) {
	if rs.resolved < len(rs.req.ch) || rs.done >= 0 {
		return
	}
	rs.done = t
	e.inflight--
	e.noteOcc(t)
	if e.cfg.Tuner != nil {
		e.cfg.Tuner.Observe(t, rs.req.algo, rs.req.k, rs.req.bytes, t-rs.start)
	}
	if len(e.queue) > 0 {
		next := e.queue[0]
		e.queue = e.queue[1:]
		e.begin(next, t)
	}
}
