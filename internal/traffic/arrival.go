package traffic

import "repro/internal/sim"

// arrival generates a deterministic non-decreasing stream of arrival
// cycles from a seeded RNG. All gaps for a run are drawn from one
// dedicated stream before the fabric starts stepping, so execution
// interleaving can never perturb the workload.
type arrival interface {
	// Next returns the next arrival cycle (relative to the run start).
	Next() int64
}

// newArrival builds the configured process. spec must already be
// validated and defaulted.
func newArrival(spec ArrivalSpec, rng *sim.RNG) arrival {
	switch spec.Kind {
	case ArrivalBursty:
		period := spec.OnCycles + spec.OffCycles
		// Inside the on-windows the process runs hot by the inverse duty
		// cycle, so the long-run average matches the configured rate.
		scale := 1e6 / spec.RatePerMcycle * float64(spec.OnCycles) / float64(period)
		return &bursty{rng: rng, scale: scale, on: spec.OnCycles, period: period}
	default: // ArrivalPoisson
		return &poisson{rng: rng, scale: 1e6 / spec.RatePerMcycle}
	}
}

// expGap draws one exponential inter-arrival gap with the given mean,
// rounded to whole cycles and floored at 1 so the stream strictly
// advances past any finite burst.
func expGap(rng *sim.RNG, mean float64) int64 {
	g := int64(rng.Exp()*mean + 0.5)
	if g < 1 {
		g = 1
	}
	return g
}

// poisson is the memoryless process: i.i.d. exponential gaps.
type poisson struct {
	rng   *sim.RNG
	scale float64 // mean gap in cycles: 1e6/rate
	at    int64
}

func (p *poisson) Next() int64 {
	p.at += expGap(p.rng, p.scale)
	return p.at
}

// bursty is the on-off process: a Poisson stream over *active* time
// (on-windows only, at the scaled-up on-rate), mapped to wall time by
// skipping the off-windows. Every arrival lands strictly inside an
// on-window (at % period < on — the duty-cycle property the statistical
// tests assert), and because off-time is skipped rather than clamped
// away, the long-run wall-clock rate matches the configured average
// exactly.
type bursty struct {
	rng        *sim.RNG
	scale      float64 // mean gap in active cycles
	on, period int64
	active     int64 // cumulative on-window cycles consumed
}

func (b *bursty) Next() int64 {
	b.active += expGap(b.rng, b.scale)
	return (b.active/b.on)*b.period + b.active%b.on
}
