// Package traffic is the open-system workload engine: it injects
// multicast requests into a long-running fabric from deterministic
// arrival processes and measures steady-state service behaviour, where
// every other harness in this repository is closed-system (one multicast
// or a fixed batch per run).
//
// A run is shaped by three orthogonal axes:
//
//   - Arrival process: Poisson (exponential inter-arrival gaps) or
//     bursty on-off (Poisson inside fixed on-windows, silent in the off
//     windows), both at a configured long-run rate in requests per
//     million cycles.
//   - Workload mix: each request draws its group size from Ks, its
//     message size from Sizes, and its destinations uniformly or with
//     hot-spot skew (a seeded hot set attracts a configured fraction of
//     destination draws).
//   - Admission control: requests beyond the in-service limit wait in an
//     unbounded FIFO queue, or — under the bounded policy — are shed
//     once the queue is full. Shed requests are always reported as shed,
//     never silently dropped.
//
// Admitted requests run concurrently on one shared fabric through the
// same delivery discipline as internal/mcastsim (nodes re-derive sends
// from the split table on delivery; one-port spacing via a per-node port
// ledger, so overlapping requests serialize their software sends
// honestly), optionally wrapped in internal/recover's timeout/
// retransmit/repair machinery for faulted fabrics (Reliable mode).
//
// The engine follows the event-queue-as-clock discipline: every
// decision — arrival, admission, send issue, injection, deadline,
// completion — fires at an exact simulated cycle from one
// sim.EventQueue, and all randomness comes from per-run seeded streams
// drawn before the fabric starts stepping. A run is therefore
// bit-identical across reruns, across the fast and reference wormhole
// kernels, and across shard/merge splits of a sweep — the same
// determinism contract the closed-system harnesses established.
package traffic

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/wormhole"
)

// Arrival process kinds.
const (
	ArrivalPoisson = "poisson"
	ArrivalBursty  = "bursty"
)

// Admission policies.
const (
	AdmissionFIFO    = "fifo"    // unbounded FIFO queue, nothing is shed
	AdmissionBounded = "bounded" // bounded queue; overflow is shed
)

// ArrivalSpec parameterizes the request arrival process.
type ArrivalSpec struct {
	// Kind selects the process: ArrivalPoisson or ArrivalBursty.
	Kind string
	// RatePerMcycle is the long-run offered rate in requests per million
	// cycles. Must be > 0.
	RatePerMcycle float64
	// OnCycles/OffCycles shape the bursty process: arrivals fall only in
	// the on-windows of a fixed on/off period, at a rate scaled up so the
	// long-run average still matches RatePerMcycle. Both default to
	// 16384; ignored for Poisson.
	OnCycles, OffCycles int64
}

// Workload parameterizes the per-request draws.
type Workload struct {
	// Ks are the candidate multicast group sizes (source included); each
	// request draws one uniformly. Every k must be in [2, fabric nodes].
	Ks []int
	// Sizes are the candidate message sizes in bytes; each request draws
	// one uniformly.
	Sizes []int
	// HotFrac is the probability a destination draw comes from the hot
	// set instead of the uniform fabric; 0 disables skew.
	HotFrac float64
	// HotNodes is the hot-set size (a seeded uniform sample of fabric
	// nodes). Required in [2, fabric nodes] when HotFrac > 0.
	HotNodes int
}

// Admission parameterizes the service and queueing model.
type Admission struct {
	// Policy is AdmissionFIFO or AdmissionBounded.
	Policy string
	// MaxInFlight is the number of requests multicast concurrently (the
	// service parallelism); arrivals beyond it queue. 0 defaults to 4.
	MaxInFlight int
	// QueueCap bounds the wait queue under AdmissionBounded (arrivals
	// beyond it are shed); 0 defaults to 16. Ignored under FIFO.
	QueueCap int
}

// Config parameterizes one open-system traffic run.
type Config struct {
	// Software carries the per-message software costs (t_send, t_recv,
	// t_hold), evaluated per request at its drawn message size.
	Software model.Software
	// AddrBytes is the per-destination-address payload charge, as in
	// mcastsim.Config.
	AddrBytes int
	// Arrival, Load and Admit are the three scenario axes.
	Arrival ArrivalSpec
	Load    Workload
	Admit   Admission
	// Requests is the total number of arrivals to inject (> 0); Warmup
	// is how many initial arrivals are excluded from steady-state
	// metrics (in [0, Requests)). The measurement window opens at the
	// first measured request's arrival.
	Requests, Warmup int
	// Less is the architecture chain order for request groups (ordered
	// algorithms); nil keeps the sampled draw order (OPT-tree style).
	// With a Tuner it is the order applied to Ordered choices.
	Less func(a, b int) bool
	// Plan builds the split table for a k-member group under the
	// measured parameters — the same signature as exp.Algorithm.Table.
	// Ignored (and may be nil) when Tuner is set.
	Plan func(k int, thold, tend model.Time) core.SplitTable
	// Tuner, when set, replaces the static Less/Plan pair with an
	// admission-time algorithm policy: at the cycle a request enters
	// service the engine asks Choose which algorithm to run it with and
	// builds the chain and split table from the returned Choice, and at
	// each completion it feeds the observed service latency back through
	// Observe so the policy can recalibrate and switch algorithms live.
	// Both calls happen at exact event-queue cycles, so a tuned run
	// keeps the full determinism contract. Nil keeps the static path
	// bit-identical to previous releases.
	Tuner Selector
	// TEnd maps a message size to its calibrated unicast latency
	// (mcastsim.Unicast); it shapes OPT tables and anchors Reliable-mode
	// delivery deadlines. Must be > 0 for every size in Load.Sizes.
	TEnd func(bytes int) model.Time
	// Reliable wraps every request in the recovery discipline: per-send
	// deadline TEnd*3, retransmission with seeded bounded-exponential
	// backoff (base TEnd/4, 3 retries), frozen-worm reclamation, and
	// subtree re-planning on give-up — the internal/recover defaults.
	// Required when the fabric carries a fault plan; without it an
	// unreachable destination is a run error.
	Reliable bool
	// Down, when set, reports whether a fabric node is down at a cycle
	// (relative to run start): request groups are placed only on nodes up
	// at their pre-drawn arrival cycle, modelling membership that routes
	// around known outages. fault.Plan.NodeDownAt fits directly on a
	// fresh fabric. Placement stays a pure function of (Seed, Down), so
	// determinism is preserved; a node crashing after placement is
	// handled by the recovery machinery, which is why Down requires
	// Reliable mode. When every candidate is down the draw degrades to
	// accepting a down node rather than failing generation.
	Down func(node int, at int64) bool
	// Seed drives every random draw of the run: arrival gaps, workload
	// mix, placements, hot set and backoff jitter each get an
	// independent derived stream.
	Seed uint64
	// MaxCycles bounds the run as a safety net; 0 derives a generous
	// default from the workload. NoProgressCycles is the watchdog window
	// with mcastsim.Config semantics; it is ignored in Reliable mode,
	// where per-send deadlines subsume it.
	MaxCycles        int64
	NoProgressCycles int64
}

// Independent seed streams, derived from Config.Seed by xor so the axes
// can never alias each other's draws.
const (
	seedArrival  = 0xa441_9c3a_7001_55e5
	seedWorkload = 0x3a9e_77b1_c0de_f00d
	seedHotSet   = 0x5ca1_ab1e_0dd5_eed5
	seedBackoff  = 0xbac0_ff5e_ed00_77aa
)

// Reliable-mode constants, matching the internal/recover defaults: the
// deadline slack factor on TEnd, the retransmission budget, and the
// TEnd divisor for the backoff base.
const (
	reliableSlack   = 3
	reliableRetries = 3
	backoffDivisor  = 4
)

// withDefaults fills zero-valued knobs.
func (c Config) withDefaults() Config {
	if c.Arrival.OnCycles == 0 {
		c.Arrival.OnCycles = 16384
	}
	if c.Arrival.OffCycles == 0 {
		c.Arrival.OffCycles = 16384
	}
	if c.Admit.MaxInFlight == 0 {
		c.Admit.MaxInFlight = 4
	}
	if c.Admit.QueueCap == 0 {
		c.Admit.QueueCap = 16
	}
	return c
}

// validate rejects misconfigurations with actionable errors. nodes is
// the fabric size.
func (c Config) validate(nodes int) error {
	switch c.Arrival.Kind {
	case ArrivalPoisson, ArrivalBursty:
	default:
		return fmt.Errorf("traffic: unknown arrival process %q (want %q or %q)", c.Arrival.Kind, ArrivalPoisson, ArrivalBursty)
	}
	if c.Arrival.RatePerMcycle <= 0 {
		return fmt.Errorf("traffic: arrival rate must be > 0 requests/Mcycle, got %g", c.Arrival.RatePerMcycle)
	}
	if c.Arrival.OnCycles < 1 || c.Arrival.OffCycles < 0 {
		return fmt.Errorf("traffic: bursty window %d on / %d off invalid", c.Arrival.OnCycles, c.Arrival.OffCycles)
	}
	switch c.Admit.Policy {
	case AdmissionFIFO, AdmissionBounded:
	default:
		return fmt.Errorf("traffic: unknown admission policy %q (want %q or %q)", c.Admit.Policy, AdmissionFIFO, AdmissionBounded)
	}
	if c.Admit.MaxInFlight < 1 {
		return fmt.Errorf("traffic: MaxInFlight must be >= 1, got %d", c.Admit.MaxInFlight)
	}
	if c.Admit.Policy == AdmissionBounded && c.Admit.QueueCap < 1 {
		return fmt.Errorf("traffic: bounded QueueCap must be >= 1, got %d", c.Admit.QueueCap)
	}
	if c.Requests < 1 {
		return fmt.Errorf("traffic: Requests must be >= 1, got %d", c.Requests)
	}
	if c.Warmup < 0 || c.Warmup >= c.Requests {
		return fmt.Errorf("traffic: Warmup %d outside [0, Requests=%d)", c.Warmup, c.Requests)
	}
	if len(c.Load.Ks) == 0 {
		return fmt.Errorf("traffic: Load.Ks must name at least one group size")
	}
	for _, k := range c.Load.Ks {
		if k < 2 || k > nodes {
			return fmt.Errorf("traffic: group size %d outside [2, %d nodes]", k, nodes)
		}
	}
	if len(c.Load.Sizes) == 0 {
		return fmt.Errorf("traffic: Load.Sizes must name at least one message size")
	}
	for _, b := range c.Load.Sizes {
		if b < 0 {
			return fmt.Errorf("traffic: negative message size %d", b)
		}
	}
	if c.Load.HotFrac < 0 || c.Load.HotFrac > 1 {
		return fmt.Errorf("traffic: HotFrac %g outside [0, 1]", c.Load.HotFrac)
	}
	if c.Load.HotFrac > 0 && (c.Load.HotNodes < 2 || c.Load.HotNodes > nodes) {
		return fmt.Errorf("traffic: HotNodes %d outside [2, %d nodes] with HotFrac %g", c.Load.HotNodes, nodes, c.Load.HotFrac)
	}
	if c.Down != nil && !c.Reliable {
		return fmt.Errorf("traffic: Config.Down (outage-aware placement) requires Reliable mode: a node can crash after placement and only the recovery machinery handles the resulting loss")
	}
	if c.Plan == nil && c.Tuner == nil {
		return fmt.Errorf("traffic: Config.Plan (split-table builder) is required")
	}
	if c.TEnd == nil {
		return fmt.Errorf("traffic: Config.TEnd (calibrated unicast latency) is required")
	}
	for _, b := range c.Load.Sizes {
		if t := c.TEnd(b); t <= 0 {
			return fmt.Errorf("traffic: TEnd(%d bytes) = %d, need the calibrated unicast latency > 0", b, t)
		}
	}
	return nil
}

// Choice is one selectable algorithm, resolved by a Selector at
// admission time: the policy's own index for it (echoed in Observe and
// RequestResult.Algo), whether the chain follows the architecture
// order (Config.Less) or the sampled draw order, and the split-table
// builder — the same (Ordered, Plan) pair the static configuration
// spreads over Less/Plan.
type Choice struct {
	Algo    int
	Ordered bool
	Plan    func(k int, thold, tend model.Time) core.SplitTable
}

// Selector is the opt-in admission-time algorithm policy (see
// Config.Tuner). Choose is called once per request at its
// service-start cycle; Observe once per completed request at its
// completion cycle, with the observed service latency (start to done,
// queueing excluded — the closed-system quantity crossover surfaces
// are measured in). Implementations must be deterministic functions of
// their call history: the engine's calls arrive in event-queue order,
// so any internal state machine replays identically across reruns and
// kernels.
type Selector interface {
	Choose(at int64, k, bytes int) Choice
	Observe(at int64, algo, k, bytes int, latency int64)
}

// nodeOf is a readability alias for chain address → fabric node.
func nodeOf(a int) wormhole.NodeID { return wormhole.NodeID(a) }
