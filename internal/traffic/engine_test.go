package traffic_test

// Engine-level battery: sanity of the service accounting, the
// determinism contract (rerun / fast-vs-reference kernel DeepEqual),
// admission-control behaviour, and configuration validation.

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/bmin"
	"repro/internal/core"
	"repro/internal/mcastsim"
	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/traffic"
	"repro/internal/wormhole"
)

var testSoft = model.Software{
	Send: model.Linear{Fixed: 200, PerByte: 0.15},
	Recv: model.Linear{Fixed: 200, PerByte: 0.15},
	Hold: model.Linear{Fixed: 200, PerByte: 0.15},
}

// calibrateSizes measures t_end per message size on a healthy fabric,
// the way every experiment driver calibrates before running.
func calibrateSizes(t *testing.T, topo wormhole.Topology, sizes []int) func(int) model.Time {
	t.Helper()
	tends := make(map[int]model.Time, len(sizes))
	for _, b := range sizes {
		net := wormhole.New(topo, wormhole.DefaultConfig())
		tend, err := mcastsim.Unicast(net, 0, topo.NumNodes()-1, b, mcastsim.Config{Software: testSoft})
		if err != nil {
			t.Fatal(err)
		}
		tends[b] = tend
	}
	return func(b int) model.Time { return tends[b] }
}

// meshConfig is the battery's base scenario: Poisson arrivals at a
// moderate rate on an 8x8 mesh, mixed k and sizes, OPT tables over the
// dim-order chain, unbounded FIFO admission.
func meshConfig(t *testing.T) (*mesh.Mesh, traffic.Config) {
	t.Helper()
	m := mesh.New2D(8, 8)
	sizes := []int{256, 1024}
	cfg := traffic.Config{
		Software: testSoft,
		Arrival:  traffic.ArrivalSpec{Kind: traffic.ArrivalPoisson, RatePerMcycle: 120},
		Load:     traffic.Workload{Ks: []int{4, 8}, Sizes: sizes},
		Admit:    traffic.Admission{Policy: traffic.AdmissionFIFO},
		Requests: 60,
		Warmup:   10,
		Less:     m.DimOrderLess,
		Plan:     func(k int, thold, tend model.Time) core.SplitTable { return core.NewOptTable(k, thold, tend) },
		TEnd:     calibrateSizes(t, m, sizes),
		Seed:     7,
	}
	return m, cfg
}

func runTraffic(t *testing.T, topo wormhole.Topology, kernel wormhole.Kernel, cfg traffic.Config) traffic.Result {
	t.Helper()
	net := wormhole.New(topo, wormhole.DefaultConfig())
	net.SetKernel(kernel)
	res, err := traffic.Run(net, cfg)
	if err != nil {
		t.Fatalf("traffic run errored: %v", err)
	}
	return res
}

func TestTrafficServiceAccounting(t *testing.T) {
	m, cfg := meshConfig(t)
	res := runTraffic(t, m, wormhole.KernelFast, cfg)

	if got := len(res.Requests); got != cfg.Requests {
		t.Fatalf("recorded %d requests, want %d", got, cfg.Requests)
	}
	if res.Metrics.Shed != 0 {
		t.Fatalf("FIFO admission shed %d requests", res.Metrics.Shed)
	}
	if res.Metrics.Completed != cfg.Requests {
		t.Fatalf("completed %d of %d requests under FIFO", res.Metrics.Completed, cfg.Requests)
	}
	for i, rr := range res.Requests {
		if rr.Shed {
			t.Fatalf("request %d shed under FIFO", i)
		}
		if rr.Start < rr.Arrive || rr.Done < rr.Start {
			t.Fatalf("request %d time order broken: arrive=%d start=%d done=%d", i, rr.Arrive, rr.Start, rr.Done)
		}
		for pos, d := range rr.Delivered {
			if !d {
				t.Fatalf("request %d position %d undelivered on a healthy fabric", i, pos)
			}
		}
		if rr.Abandoned != 0 {
			t.Fatalf("request %d abandoned %d destinations on a healthy fabric", i, rr.Abandoned)
		}
	}
	mt := res.Metrics
	if mt.P50 <= 0 || mt.P99 < mt.P50 || mt.P999 < mt.P99 {
		t.Fatalf("latency quantiles inconsistent: p50=%g p99=%g p999=%g", mt.P50, mt.P99, mt.P999)
	}
	if mt.OfferedPerMcycle <= 0 || mt.DeliveredPerMcycle <= 0 {
		t.Fatalf("throughput not measured: offered=%g delivered=%g", mt.OfferedPerMcycle, mt.DeliveredPerMcycle)
	}
	if mt.MeanOccupancy <= 0 {
		t.Fatalf("occupancy not measured: %g", mt.MeanOccupancy)
	}
	if mt.Worms <= 0 {
		t.Fatalf("no worms crossed the fabric")
	}
}

// TestTrafficDeterminism: same seed, same config -> DeepEqual-identical
// Result across reruns and across the fast and reference kernels, for
// every arrival process and with hot-spot skew on.
func TestTrafficDeterminism(t *testing.T) {
	m, base := meshConfig(t)
	bursty := base
	bursty.Arrival = traffic.ArrivalSpec{Kind: traffic.ArrivalBursty, RatePerMcycle: 120}
	skewed := base
	skewed.Load.HotFrac = 0.7
	skewed.Load.HotNodes = 6
	bounded := base
	bounded.Arrival.RatePerMcycle = 600
	bounded.Admit = traffic.Admission{Policy: traffic.AdmissionBounded, MaxInFlight: 2, QueueCap: 3}

	for name, cfg := range map[string]traffic.Config{
		"poisson": base, "bursty": bursty, "hotspot": skewed, "bounded": bounded,
	} {
		res := runTraffic(t, m, wormhole.KernelFast, cfg)
		again := runTraffic(t, m, wormhole.KernelFast, cfg)
		if !reflect.DeepEqual(res, again) {
			t.Fatalf("%s: rerun diverged", name)
		}
		ref := runTraffic(t, m, wormhole.KernelReference, cfg)
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("%s: kernels diverged:\n fast %+v\n ref  %+v", name, res.Metrics, ref.Metrics)
		}
	}
}

// TestTrafficSeedSensitivity: distinct seeds draw distinct workloads.
func TestTrafficSeedSensitivity(t *testing.T) {
	m, cfg := meshConfig(t)
	res := runTraffic(t, m, wormhole.KernelFast, cfg)
	cfg.Seed++
	other := runTraffic(t, m, wormhole.KernelFast, cfg)
	if reflect.DeepEqual(res, other) {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestTrafficBoundedShed: a saturating rate against a tiny service
// capacity must shed — and every shed request is reported as shed, with
// the books balancing exactly (nothing silently dropped).
func TestTrafficBoundedShed(t *testing.T) {
	m, cfg := meshConfig(t)
	cfg.Arrival.RatePerMcycle = 2000
	cfg.Admit = traffic.Admission{Policy: traffic.AdmissionBounded, MaxInFlight: 1, QueueCap: 1}
	res := runTraffic(t, m, wormhole.KernelFast, cfg)

	if res.Metrics.Shed == 0 {
		t.Fatal("saturating rate against capacity 1+1 shed nothing; the bounded policy is inert")
	}
	shedFlags := 0
	for i, rr := range res.Requests {
		if rr.Shed {
			shedFlags++
			if rr.Start != -1 || rr.Done != -1 || rr.Delivered != nil {
				t.Fatalf("shed request %d carries service state: %+v", i, rr)
			}
		}
	}
	if shedFlags != res.Metrics.Shed {
		t.Fatalf("%d requests flagged shed but Metrics.Shed=%d", shedFlags, res.Metrics.Shed)
	}
	if res.Metrics.Completed+res.Metrics.Shed != cfg.Requests {
		t.Fatalf("accounting leak: %d completed + %d shed != %d requests",
			res.Metrics.Completed, res.Metrics.Shed, cfg.Requests)
	}
}

// TestTrafficQueueingDelay: with one server and a hot arrival rate, FIFO
// requests must visibly wait, and waiting must grow the completion
// latency beyond the queue-free case.
func TestTrafficQueueingDelay(t *testing.T) {
	m, cfg := meshConfig(t)
	cfg.Arrival.RatePerMcycle = 2000
	cfg.Admit = traffic.Admission{Policy: traffic.AdmissionFIFO, MaxInFlight: 1}
	res := runTraffic(t, m, wormhole.KernelFast, cfg)
	if res.Metrics.MeanQueueDelay <= 0 || res.Metrics.MaxQueueDelay <= 0 {
		t.Fatalf("no queueing delay at a saturating rate: mean=%g max=%d",
			res.Metrics.MeanQueueDelay, res.Metrics.MaxQueueDelay)
	}
	relaxed := cfg
	relaxed.Arrival.RatePerMcycle = 20
	quiet := runTraffic(t, m, wormhole.KernelFast, relaxed)
	if res.Metrics.P99 <= quiet.Metrics.P99 {
		t.Fatalf("saturated p99 (%g) not above quiet p99 (%g)", res.Metrics.P99, quiet.Metrics.P99)
	}
}

// TestTrafficBMIN: the engine is fabric-agnostic; a BMIN run completes
// and stays deterministic across kernels.
func TestTrafficBMIN(t *testing.T) {
	b := bmin.New(64, bmin.AscentStraight)
	sizes := []int{512}
	cfg := traffic.Config{
		Software: testSoft,
		Arrival:  traffic.ArrivalSpec{Kind: traffic.ArrivalPoisson, RatePerMcycle: 100},
		Load:     traffic.Workload{Ks: []int{6}, Sizes: sizes},
		Admit:    traffic.Admission{Policy: traffic.AdmissionFIFO},
		Requests: 30,
		Warmup:   5,
		Less:     b.LexLess,
		Plan:     func(k int, thold, tend model.Time) core.SplitTable { return core.NewOptTable(k, thold, tend) },
		TEnd:     calibrateSizes(t, b, sizes),
		Seed:     11,
	}
	res := runTraffic(t, b, wormhole.KernelFast, cfg)
	if res.Metrics.Completed != cfg.Requests {
		t.Fatalf("BMIN completed %d of %d", res.Metrics.Completed, cfg.Requests)
	}
	ref := runTraffic(t, b, wormhole.KernelReference, cfg)
	if !reflect.DeepEqual(res, ref) {
		t.Fatal("BMIN kernels diverged")
	}
}

func TestTrafficValidation(t *testing.T) {
	m, good := meshConfig(t)
	cases := map[string]struct {
		mutate func(*traffic.Config)
		want   string
	}{
		"zero rate":     {func(c *traffic.Config) { c.Arrival.RatePerMcycle = 0 }, "rate must be > 0"},
		"bad arrival":   {func(c *traffic.Config) { c.Arrival.Kind = "fractal" }, "unknown arrival process"},
		"bad admission": {func(c *traffic.Config) { c.Admit.Policy = "lifo" }, "unknown admission policy"},
		"no requests":   {func(c *traffic.Config) { c.Requests = 0 }, "Requests must be >= 1"},
		"warmup high":   {func(c *traffic.Config) { c.Warmup = c.Requests }, "outside [0, Requests"},
		"tiny group":    {func(c *traffic.Config) { c.Load.Ks = []int{1} }, "group size 1"},
		"no sizes":      {func(c *traffic.Config) { c.Load.Sizes = nil }, "at least one message size"},
		"bad hotfrac":   {func(c *traffic.Config) { c.Load.HotFrac = 1.5 }, "HotFrac"},
		"hot no set":    {func(c *traffic.Config) { c.Load.HotFrac = 0.5 }, "HotNodes"},
		"nil plan":      {func(c *traffic.Config) { c.Plan = nil }, "Plan"},
		"nil tend":      {func(c *traffic.Config) { c.TEnd = nil }, "TEnd"},
	}
	for name, tc := range cases {
		cfg := good
		tc.mutate(&cfg)
		_, err := traffic.Run(wormhole.New(m, wormhole.DefaultConfig()), cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got error %v, want substring %q", name, err, tc.want)
		}
	}
}
