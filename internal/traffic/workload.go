package traffic

import (
	"sort"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/sim"
)

// request is one fully drawn multicast: everything about it is fixed
// before the fabric starts stepping, so the workload is a pure function
// of (Config, Seed) and never depends on execution interleaving.
type request struct {
	id     int
	arrive int64
	k      int
	bytes  int
	// addrs is the drawn member set, source first. Under a Tuner the
	// chain, root and split table stay unset until the admission-time
	// Choice resolves them (engine.resolve); the *draws* are still all
	// made at generation time, so the workload itself remains a pure
	// function of (Config, Seed) whichever algorithms end up selected.
	addrs []int
	algo  int // Selector's Choice.Algo; -1 on the static path
	ch    chain.Chain
	root  int
	tab   core.SplitTable
	// Per-size software costs and reliable-mode deadline parameters.
	tSend, tRecv, tHold int64
	timeout             int64 // deadline after issue: TEnd*reliableSlack
	backoffBase         int64
}

// genRequests draws the whole workload: arrival times from the arrival
// stream, group/message sizes and placements from the workload stream,
// and the hot set from its own stream. Split tables are built once per
// (k, bytes) combination.
func genRequests(cfg Config, nodes int) []*request {
	arr := newArrival(cfg.Arrival, sim.NewRNG(cfg.Seed^seedArrival))
	wrng := sim.NewRNG(cfg.Seed ^ seedWorkload)
	var hot []int
	if cfg.Load.HotFrac > 0 {
		hot = sim.NewRNG(cfg.Seed^seedHotSet).Sample(nodes, cfg.Load.HotNodes)
	}

	type tabKey struct{ k, bytes int }
	tabs := make(map[tabKey]core.SplitTable)
	reqs := make([]*request, cfg.Requests)
	for i := range reqs {
		at := arr.Next()
		k := cfg.Load.Ks[wrng.Intn(len(cfg.Load.Ks))]
		bytes := cfg.Load.Sizes[wrng.Intn(len(cfg.Load.Sizes))]
		var down func(int) bool
		if cfg.Down != nil {
			down = func(v int) bool { return cfg.Down(v, at) }
		}
		addrs := drawMembers(wrng, nodes, k, hot, cfg.Load.HotFrac, down)
		var ch chain.Chain
		var root int
		var tab core.SplitTable
		tEnd := cfg.TEnd(bytes)
		if cfg.Tuner == nil {
			if cfg.Less != nil {
				ch = chain.New(addrs, cfg.Less)
			} else {
				ch = chain.Unordered(addrs)
			}
			root, _ = ch.Index(addrs[0])
			tk := tabKey{k, bytes}
			var ok bool
			if tab, ok = tabs[tk]; !ok {
				tab = cfg.Plan(k, cfg.Software.Hold.At(bytes), tEnd)
				tabs[tk] = tab
			}
		}
		base := int64(tEnd) / backoffDivisor
		if base < 1 {
			base = 1
		}
		reqs[i] = &request{
			id:          i,
			arrive:      at,
			k:           k,
			bytes:       bytes,
			addrs:       addrs,
			algo:        -1,
			ch:          ch,
			root:        root,
			tab:         tab,
			tSend:       cfg.Software.Send.At(bytes),
			tRecv:       cfg.Software.Recv.At(bytes),
			tHold:       cfg.Software.Hold.At(bytes),
			timeout:     int64(tEnd) * reliableSlack,
			backoffBase: base,
		}
	}
	return reqs
}

// drawMembers picks k distinct fabric nodes: the source first (uniform —
// skew models popular destinations, not popular senders), then k-1
// destinations, each drawn from the hot set with probability hotFrac and
// uniformly otherwise. Duplicate draws — and, when a down filter is
// given, nodes known to be down — are rejected; after a bounded streak
// of rejections (a tiny hot set that is already fully in the group) the
// draw falls back to a deterministic forward scan so generation always
// terminates on the same member set for the same stream. A nil down
// consumes exactly the draws the filterless generator did, keeping
// existing workloads bit-identical; once the forward scan has wrapped
// the whole fabric the down filter is waived (an almost-all-down fabric
// still yields a group; the recovery machinery owns the consequences).
func drawMembers(rng *sim.RNG, nodes, k int, hot []int, hotFrac float64, down func(int) bool) []int {
	isDown := func(v int) bool { return down != nil && down(v) }
	in := make(map[int]bool, k)
	members := make([]int, 0, k)
	add := func(v int) {
		in[v] = true
		members = append(members, v)
	}
	src := rng.Intn(nodes)
	for rejects := 0; isDown(src) && rejects <= 64+nodes; rejects++ {
		if rejects < 64 {
			src = rng.Intn(nodes)
		} else {
			src = (src + 1) % nodes
		}
	}
	add(src)
	for len(members) < k {
		v := rng.Intn(nodes)
		if len(hot) > 0 && rng.Float64() < hotFrac {
			v = hot[rng.Intn(len(hot))]
		}
		for rejects := 0; in[v] || (isDown(v) && rejects <= 64+nodes); rejects++ {
			if rejects < 64 {
				if len(hot) > 0 && rng.Float64() < hotFrac {
					v = hot[rng.Intn(len(hot))]
				} else {
					v = rng.Intn(nodes)
				}
				continue
			}
			v = (v + 1) % nodes
		}
		add(v)
	}
	return members
}

// insertSorted returns xs with v inserted in ascending order; used when
// a give-up re-adopts the rest of a subtree under its sender (the live
// list plan.RepairSends consumes must stay strictly ascending).
func insertSorted(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	out := make([]int, 0, len(xs)+1)
	out = append(out, xs[:i]...)
	out = append(out, v)
	out = append(out, xs[i:]...)
	return out
}
