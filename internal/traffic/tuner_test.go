package traffic_test

// Selector-hook battery: an admission-time tuner.Policy wired into
// Config.Tuner must actually steer per-request algorithm choice, report
// its picks through RequestResult.Algo, keep the run deterministic
// across reruns and kernels, and leave the static path untouched.

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/traffic"
	"repro/internal/tuner"
	"repro/internal/wormhole"
)

// tunerTestPolicy builds a fresh two-algorithm policy whose surface
// makes the pick depend on message size — binomial wins short
// messages, OPT wins long ones — with gaps so wide that observed drift
// cannot flip a crossover mid-run.
func tunerTestPolicy(t *testing.T, m *mesh.Mesh) *tuner.Policy {
	t.Helper()
	s := tuner.New("8x8 mesh", []string{"bin", "opt"}, []int{4, 8}, []int{256, 1024}, []int{0})
	for ki := range []int{4, 8} {
		s.Set(ki, 0, 0, 0, 100)    // bin at 256 B: cheap
		s.Set(ki, 0, 0, 1, 100000) // opt at 256 B: hopeless
		s.Set(ki, 1, 0, 0, 100000)
		s.Set(ki, 1, 0, 1, 100)
	}
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	p, err := tuner.NewPolicy(s, []tuner.Algo{
		{Name: "bin", Table: func(k int, thold, tend model.Time) core.SplitTable {
			return core.BinomialTable{Max: k}
		}},
		{Name: "opt", Ordered: true, Table: func(k int, thold, tend model.Time) core.SplitTable {
			return core.NewOptTable(k, thold, tend)
		}},
	}, tuner.PolicyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestTrafficTunerSteers: with a Tuner installed the engine asks it per
// admitted request, runs the chosen algorithm, and records the pick.
func TestTrafficTunerSteers(t *testing.T) {
	m, cfg := meshConfig(t)
	cfg.Plan = nil // selector-only admission: Plan is not required
	pol := tunerTestPolicy(t, m)
	cfg.Tuner = pol
	res := runTraffic(t, m, wormhole.KernelFast, cfg)

	counts := map[int]int{}
	for _, r := range res.Requests {
		if r.Shed {
			if r.Algo != -1 {
				t.Fatalf("shed request carries algorithm %d, want -1", r.Algo)
			}
			continue
		}
		switch {
		case r.Bytes == 256 && r.Algo != 0:
			t.Fatalf("256-byte request ran algorithm %d, surface says bin (0)", r.Algo)
		case r.Bytes == 1024 && r.Algo != 1:
			t.Fatalf("1024-byte request ran algorithm %d, surface says opt (1)", r.Algo)
		}
		counts[r.Algo]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("selector did not exercise both algorithms: %v", counts)
	}
	if pol.Observations() == 0 {
		t.Fatal("no completion latencies fed back into the policy")
	}
}

// TestTrafficTunerDeterminism: a tuned run is a pure function of its
// configuration — reruns and the reference kernel agree exactly (the
// policy is stateful, so each run gets a fresh one).
func TestTrafficTunerDeterminism(t *testing.T) {
	m, base := meshConfig(t)
	run := func(k wormhole.Kernel) traffic.Result {
		cfg := base
		cfg.Tuner = tunerTestPolicy(t, m)
		return runTraffic(t, m, k, cfg)
	}
	res := run(wormhole.KernelFast)
	if again := run(wormhole.KernelFast); !reflect.DeepEqual(res, again) {
		t.Fatal("tuned rerun diverged")
	}
	if ref := run(wormhole.KernelReference); !reflect.DeepEqual(res, ref) {
		t.Fatalf("tuned kernels diverged:\n fast %+v\n ref  %+v", res.Metrics, ref.Metrics)
	}
}

// TestTrafficStaticPathUnmarked: without a Tuner every request reports
// Algo -1 — the static path carries no selector state.
func TestTrafficStaticPathUnmarked(t *testing.T) {
	m, cfg := meshConfig(t)
	res := runTraffic(t, m, wormhole.KernelFast, cfg)
	for i, r := range res.Requests {
		if r.Algo != -1 {
			t.Fatalf("static request %d carries algorithm %d, want -1", i, r.Algo)
		}
	}
}

// TestTrafficTunerValidation: Plan and Tuner are alternatives — at
// least one must be present.
func TestTrafficTunerValidation(t *testing.T) {
	m, cfg := meshConfig(t)
	cfg.Plan = nil
	net := wormhole.New(m, wormhole.DefaultConfig())
	if _, err := traffic.Run(net, cfg); err == nil {
		t.Fatal("accepted a config with neither Plan nor Tuner")
	}
}
