package traffic

import (
	"repro/internal/sim"
	"repro/internal/wormhole"
)

// RequestResult is one request's service record. Times are cycles
// relative to the run start; Start and Done are -1 for shed requests.
type RequestResult struct {
	Arrive, Start, Done int64
	K, Bytes            int
	// Addrs is the request's chain (fabric node ids in chain order) and
	// Root the source's chain position.
	Addrs []int
	Root  int
	// Delivered flags each chain position that received the message;
	// nil for shed requests. Abandoned counts positions given up by the
	// Reliable-mode repair policy.
	Delivered []bool
	Abandoned int
	Shed      bool
	// Algo is the Selector's algorithm index for this request (see
	// Config.Tuner); -1 on the static path and for shed requests.
	Algo int
}

// Metrics are the steady-state aggregates over the measurement window,
// which opens at the first measured request's arrival (requests before
// Config.Warmup are excluded).
type Metrics struct {
	// Requests is the total arrival count, Measured the count inside the
	// window; Completed/Shed partition all requests by outcome and
	// CompletedMeasured/ShedMeasured the measured ones.
	Requests, Measured                  int
	Completed, Shed                     int
	CompletedMeasured, ShedMeasured     int
	AbandonedDests                      int
	Retransmits, RepairSends, Cancelled int64
	// WarmStart is the window-opening cycle, LastArrival the final
	// arrival, End the last measured completion.
	WarmStart, LastArrival, End int64
	// OfferedPerMcycle is the measured arrival rate; DeliveredPerMcycle
	// the measured completion rate. Both are requests per million cycles;
	// a widening gap (or sheds) marks saturation.
	OfferedPerMcycle, DeliveredPerMcycle float64
	// Completion-latency quantiles and mean (arrival to done, queueing
	// included) over measured completed requests.
	P50, P99, P999, MeanLatency float64
	// MeanQueueDelay/MaxQueueDelay cover admission-queue waiting
	// (arrival to service start) of measured admitted requests.
	MeanQueueDelay float64
	MaxQueueDelay  int64
	// MeanOccupancy is the time-averaged in-service request count over
	// the window.
	MeanOccupancy float64
	// Fabric aggregates over the whole run (wormhole.Stats deltas).
	Worms, BlockedCycles, InjectWaitCycles, Cycles int64
}

// Result reports one open-system traffic run.
type Result struct {
	Requests []RequestResult
	Metrics  Metrics
}

// collect assembles the Result from the engine's final state.
func (e *engine) collect(t0 int64, start wormhole.Stats) Result {
	m := Metrics{
		Requests:    len(e.states),
		Measured:    len(e.states) - e.cfg.Warmup,
		Shed:        e.shedCount,
		Retransmits: e.retransmits,
		RepairSends: e.repairSends,
		Cancelled:   e.cancelled,
		WarmStart:   e.warmStart - t0,
		LastArrival: e.states[len(e.states)-1].req.arrive,
	}
	reqs := make([]RequestResult, len(e.states))
	var lat, qd []float64
	for i, rs := range e.states {
		rr := RequestResult{
			Arrive: rs.req.arrive,
			Start:  -1,
			Done:   -1,
			K:      rs.req.k,
			Bytes:  rs.req.bytes,
			Addrs:  []int(rs.req.ch),
			Root:   rs.req.root,
			Shed:   rs.shed,
			Algo:   rs.req.algo,
		}
		measured := i >= e.cfg.Warmup
		if rs.shed {
			if measured {
				m.ShedMeasured++
			}
		} else {
			rr.Start = rs.start - t0
			rr.Done = rs.done - t0
			rr.Delivered = rs.delivered
			rr.Abandoned = rs.abandoned
			m.Completed++
			m.AbandonedDests += rs.abandoned
			if measured {
				m.CompletedMeasured++
				if rr.Done > m.End {
					m.End = rr.Done
				}
				lat = append(lat, float64(rr.Done-rr.Arrive))
				wait := rr.Start - rr.Arrive
				qd = append(qd, float64(wait))
				if wait > m.MaxQueueDelay {
					m.MaxQueueDelay = wait
				}
			}
		}
		reqs[i] = rr
	}

	if span := m.LastArrival - m.WarmStart; span > 0 {
		m.OfferedPerMcycle = float64(m.Measured) / float64(span) * 1e6
	}
	if span := m.End - m.WarmStart; span > 0 {
		m.DeliveredPerMcycle = float64(m.CompletedMeasured) / float64(span) * 1e6
	}
	m.P50 = sim.Percentile(lat, 0.50)
	m.P99 = sim.Percentile(lat, 0.99)
	m.P999 = sim.Percentile(lat, 0.999)
	var ls, qs sim.Stats
	for _, x := range lat {
		ls.Add(x)
	}
	for _, x := range qd {
		qs.Add(x)
	}
	m.MeanLatency = ls.Mean()
	m.MeanQueueDelay = qs.Mean()
	m.MeanOccupancy = e.occ.Mean(t0 + m.End)

	end := e.net.Stats()
	m.Worms = end.Worms - start.Worms
	m.BlockedCycles = end.BlockedCycles - start.BlockedCycles
	m.InjectWaitCycles = end.InjectWaitCycles - start.InjectWaitCycles
	m.Cycles = end.Cycles - start.Cycles
	return Result{Requests: reqs, Metrics: m}
}
