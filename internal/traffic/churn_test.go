package traffic_test

// Churn under sustained load: node-outage windows compiled into the
// fault plan, with outage-aware placement (Config.Down) steering request
// groups around nodes known to be down at their arrival cycle.

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/traffic"
	"repro/internal/wormhole"
)

// TestDownPlacementAvoidsOutages: with Config.Down wired to the fault
// plan's outage windows, no request group includes a node that was down
// at the request's arrival cycle, the run completes under load, and the
// whole Result is deterministic across reruns.
func TestDownPlacementAvoidsOutages(t *testing.T) {
	m := mesh.New2D(8, 8)
	sizes := []int{512}
	outages := []fault.NodeOutage{
		{Node: 9, From: 0, To: fault.Forever},
		{Node: 27, From: 0, To: 60_000},
		{Node: 45, From: 20_000, To: fault.Forever},
	}
	fp, err := fault.NewPlan(m, fault.Spec{NodeOutages: outages, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := traffic.Config{
		Software: testSoft,
		Arrival:  traffic.ArrivalSpec{Kind: traffic.ArrivalPoisson, RatePerMcycle: 800},
		Load:     traffic.Workload{Ks: []int{6}, Sizes: sizes},
		Admit:    traffic.Admission{Policy: traffic.AdmissionFIFO, MaxInFlight: 2},
		Requests: 30,
		Warmup:   4,
		Less:     m.DimOrderLess,
		Plan:     func(k int, thold, tend model.Time) core.SplitTable { return core.NewOptTable(k, thold, tend) },
		TEnd:     calibrateSizes(t, m, sizes),
		Reliable: true,
		Down:     fp.NodeDownAt,
		Seed:     3,
	}

	run := func() traffic.Result {
		net := wormhole.New(m, wormhole.DefaultConfig())
		net.SetFaults(fp)
		res, err := traffic.Run(net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Quiesced(); err != nil {
			t.Fatalf("fabric not clean after churned traffic: %v", err)
		}
		return res
	}

	res := run()
	placedNearOutage := false
	for ri, rr := range res.Requests {
		for _, a := range rr.Addrs {
			if fp.NodeDownAt(a, rr.Arrive) {
				t.Fatalf("request %d (arrive %d) placed on node %d while it was down", ri, rr.Arrive, a)
			}
			if a == 27 || a == 45 {
				placedNearOutage = true // the node was usable at this arrival
			}
		}
	}
	if res.Metrics.Completed == 0 {
		t.Fatal("no request completed under churned traffic")
	}
	// The windows must matter: node 27 (up after 60k) or node 45 (up
	// before 20k) should appear in some group, proving the filter is
	// per-arrival-time, not a blanket ban.
	if !placedNearOutage {
		t.Fatal("no request drew a windowed-outage node while it was up; per-window placement coverage is vacuous (pick a different seed)")
	}
	if again := run(); !reflect.DeepEqual(res, again) {
		t.Fatal("churned traffic run not deterministic across reruns")
	}
}

// TestDownRequiresReliable: outage-aware placement without the recovery
// machinery is a misconfiguration, rejected before anything runs.
func TestDownRequiresReliable(t *testing.T) {
	m := mesh.New2D(4, 4)
	sizes := []int{128}
	cfg := traffic.Config{
		Software: testSoft,
		Arrival:  traffic.ArrivalSpec{Kind: traffic.ArrivalPoisson, RatePerMcycle: 100},
		Load:     traffic.Workload{Ks: []int{3}, Sizes: sizes},
		Admit:    traffic.Admission{Policy: traffic.AdmissionFIFO},
		Requests: 2,
		Plan:     func(k int, thold, tend model.Time) core.SplitTable { return core.BinomialTable{Max: k} },
		TEnd:     calibrateSizes(t, m, sizes),
		Down:     func(node int, at int64) bool { return false },
		Seed:     3,
	}
	if _, err := traffic.Run(wormhole.New(m, wormhole.DefaultConfig()), cfg); err == nil {
		t.Fatal("Down without Reliable accepted")
	}
}
