package traffic_test

// The traffic chaos harness, extending the PR 4 recovery chaos pattern
// to the open system: sustained Reliable-mode traffic over seeded fault
// plans on all four fabric families, under bounded admission so the shed
// path is live too. The invariants: every delivered destination of every
// request is inside that request's oracle-reachable set (delivery never
// outruns physics), every request is accounted for as completed or shed
// (never silently dropped), and the whole Result is bit-identical across
// kernels and reruns.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bfly"
	"repro/internal/bmin"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mesh"
	"repro/internal/model"
	recov "repro/internal/recover"
	"repro/internal/torus"
	"repro/internal/traffic"
	"repro/internal/wormhole"
)

type chaosPlatform struct {
	name string
	topo wormhole.Topology
	less func(a, b int) bool
}

func chaosPlatforms() []chaosPlatform {
	m := mesh.New2D(8, 8)
	tr := torus.New2D(8, 8)
	bm := bmin.New(64, bmin.AscentStraight)
	bf := bfly.New(64)
	return []chaosPlatform{
		{"mesh", m, m.DimOrderLess},
		{"torus", tr, tr.DimOrderLess},
		{"bmin", bm, bm.LexLess},
		{"bfly", bf, bf.LexLess},
	}
}

func chaosConfig(t *testing.T, p chaosPlatform, seed uint64) traffic.Config {
	t.Helper()
	sizes := []int{512}
	return traffic.Config{
		Software: testSoft,
		Arrival:  traffic.ArrivalSpec{Kind: traffic.ArrivalPoisson, RatePerMcycle: 1500},
		Load:     traffic.Workload{Ks: []int{5, 8}, Sizes: sizes},
		Admit:    traffic.Admission{Policy: traffic.AdmissionBounded, MaxInFlight: 2, QueueCap: 1},
		Requests: 24,
		Warmup:   4,
		Less:     p.less,
		Plan:     func(k int, thold, tend model.Time) core.SplitTable { return core.NewOptTable(k, thold, tend) },
		TEnd:     calibrateSizes(t, p.topo, sizes),
		Reliable: true,
		Seed:     seed,
	}
}

func chaosRun(t *testing.T, p chaosPlatform, fp *fault.Plan, cfg traffic.Config, kernel wormhole.Kernel) traffic.Result {
	t.Helper()
	net := wormhole.New(p.topo, wormhole.DefaultConfig())
	net.SetKernel(kernel)
	net.SetFaults(fp)
	res, err := traffic.Run(net, cfg)
	if err != nil {
		t.Fatalf("%s: traffic run errored under faults: %v", p.name, err)
	}
	if err := net.Quiesced(); err != nil {
		t.Fatalf("%s: fabric not clean after the run: %v", p.name, err)
	}
	return res
}

func TestChaosTrafficInvariant(t *testing.T) {
	specs := []fault.Spec{
		{DeadFrac: 0.05},
		{DeadFrac: 0.10, FlakyFrac: 0.08, DegradedFrac: 0.08},
	}
	sawShed, sawRecover, sawAbandon := false, false, false
	for _, p := range chaosPlatforms() {
		for seed := uint64(1); seed <= 2; seed++ {
			cfg := chaosConfig(t, p, seed)
			for si, spec := range specs {
				spec.Seed = seed
				fp, err := fault.NewPlan(p.topo, spec)
				if err != nil {
					t.Fatal(err)
				}
				name := fmt.Sprintf("%s/spec%d/seed%d", p.name, si, seed)

				res := chaosRun(t, p, fp, cfg, wormhole.KernelFast)
				for ri, rr := range res.Requests {
					if rr.Shed {
						sawShed = true
						if rr.Delivered != nil || rr.Done != -1 {
							t.Fatalf("%s: shed request %d carries service state", name, ri)
						}
						continue
					}
					oracle := recov.Reachable(p.topo, fp, chain.Chain(rr.Addrs), rr.Root)
					for pos, d := range rr.Delivered {
						if d && !oracle[pos] {
							t.Fatalf("%s: request %d delivered position %d (node %d) outside its oracle-reachable set",
								name, ri, pos, rr.Addrs[pos])
						}
					}
					if rr.Abandoned > 0 {
						sawAbandon = true
					}
				}
				if res.Metrics.Completed+res.Metrics.Shed != cfg.Requests {
					t.Fatalf("%s: accounting leak: %d completed + %d shed != %d requests",
						name, res.Metrics.Completed, res.Metrics.Shed, cfg.Requests)
				}
				if res.Metrics.Retransmits > 0 || res.Metrics.RepairSends > 0 {
					sawRecover = true
				}

				again := chaosRun(t, p, fp, cfg, wormhole.KernelFast)
				if !reflect.DeepEqual(res, again) {
					t.Fatalf("%s: rerun diverged", name)
				}
				ref := chaosRun(t, p, fp, cfg, wormhole.KernelReference)
				if !reflect.DeepEqual(res, ref) {
					t.Fatalf("%s: kernels diverged:\n fast %+v\n ref  %+v", name, res.Metrics, ref.Metrics)
				}
			}
		}
	}
	// Anti-vacuousness: the sweep must exercise recovery and the shed
	// path, not coast over healthy-looking plans.
	if !sawRecover {
		t.Fatal("no fault plan triggered a retransmit or repair; chaos coverage is vacuous")
	}
	if !sawShed {
		t.Fatal("no request was shed; the bounded-admission path is untested")
	}
	if !sawAbandon {
		t.Log("note: no plan partitioned a destination (abandonment untested this sweep)")
	}
}
