package traffic

// White-box statistical properties of the arrival processes: the seeded
// Poisson stream's empirical mean gap must sit near 1/lambda, the bursty
// stream must respect its on/off duty cycle exactly, and both must be
// deterministic functions of the seed.

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestPoissonInterArrivalMean(t *testing.T) {
	const (
		rate = 150.0 // requests per Mcycle -> mean gap 1e6/150
		n    = 50000
	)
	spec := ArrivalSpec{Kind: ArrivalPoisson, RatePerMcycle: rate}
	arr := newArrival(spec, sim.NewRNG(42))
	prev := int64(0)
	var gaps sim.Stats
	for i := 0; i < n; i++ {
		at := arr.Next()
		if at <= prev {
			t.Fatalf("arrival %d not strictly increasing: %d after %d", i, at, prev)
		}
		gaps.Add(float64(at - prev))
		prev = at
	}
	want := 1e6 / rate
	if rel := math.Abs(gaps.Mean()-want) / want; rel > 0.02 {
		t.Fatalf("empirical mean gap %.1f deviates %.1f%% from 1/lambda=%.1f",
			gaps.Mean(), rel*100, want)
	}
	// An exponential's standard deviation equals its mean; a loose check
	// guards against accidentally generating uniform or constant gaps.
	if rel := math.Abs(gaps.StdDev()-want) / want; rel > 0.05 {
		t.Fatalf("gap stddev %.1f not exponential-like (want ~%.1f)", gaps.StdDev(), want)
	}
}

func TestBurstyDutyCycle(t *testing.T) {
	spec := ArrivalSpec{Kind: ArrivalBursty, RatePerMcycle: 400, OnCycles: 5000, OffCycles: 15000}
	arr := newArrival(spec, sim.NewRNG(9))
	period := spec.OnCycles + spec.OffCycles
	prev := int64(0)
	var last int64
	const n = 20000
	for i := 0; i < n; i++ {
		at := arr.Next()
		if at <= prev {
			t.Fatalf("arrival %d not strictly increasing: %d after %d", i, at, prev)
		}
		if ph := at % period; ph >= spec.OnCycles {
			t.Fatalf("arrival %d at cycle %d falls in an off-window (phase %d >= on %d)",
				i, at, ph, spec.OnCycles)
		}
		prev = at
		last = at
	}
	// The long-run rate must still match the configured average within a
	// loose tolerance (window-boundary rounding compresses gaps a bit).
	got := float64(n) / float64(last) * 1e6
	if rel := math.Abs(got-spec.RatePerMcycle) / spec.RatePerMcycle; rel > 0.10 {
		t.Fatalf("long-run bursty rate %.1f/Mcycle deviates %.0f%% from configured %.1f",
			got, rel*100, spec.RatePerMcycle)
	}
}

func TestArrivalSeedDeterminism(t *testing.T) {
	for _, kind := range []string{ArrivalPoisson, ArrivalBursty} {
		spec := ArrivalSpec{Kind: kind, RatePerMcycle: 80, OnCycles: 4000, OffCycles: 4000}
		a := newArrival(spec, sim.NewRNG(123))
		b := newArrival(spec, sim.NewRNG(123))
		for i := 0; i < 1000; i++ {
			if x, y := a.Next(), b.Next(); x != y {
				t.Fatalf("%s: draw %d diverged under one seed: %d vs %d", kind, i, x, y)
			}
		}
	}
}

// TestExpGapFloor: a burst of tiny draws still strictly advances time.
func TestExpGapFloor(t *testing.T) {
	rng := sim.NewRNG(5)
	for i := 0; i < 100000; i++ {
		if g := expGap(rng, 0.01); g < 1 {
			t.Fatalf("gap %d < 1", g)
		}
	}
}

// TestDrawMembersDistinct: placements are k distinct in-range nodes even
// under extreme hot-spot pressure (hot set smaller than the group, where
// the rejection loop must fall back to the deterministic scan).
func TestDrawMembersDistinct(t *testing.T) {
	rng := sim.NewRNG(77)
	hot := []int{3, 4}
	for trial := 0; trial < 500; trial++ {
		got := drawMembers(rng, 16, 8, hot, 0.95, nil)
		if len(got) != 8 {
			t.Fatalf("trial %d: got %d members, want 8", trial, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= 16 {
				t.Fatalf("trial %d: member %d outside fabric", trial, v)
			}
			if seen[v] {
				t.Fatalf("trial %d: duplicate member %d in %v", trial, v, got)
			}
			seen[v] = true
		}
	}
}

// TestHotSpotSkew: with strong skew the hot set must absorb well more
// than its uniform share of destination draws.
func TestHotSpotSkew(t *testing.T) {
	const (
		nodes = 64
		k     = 8
	)
	rng := sim.NewRNG(31)
	hot := sim.NewRNG(99).Sample(nodes, 4)
	inHot := map[int]bool{}
	for _, h := range hot {
		inHot[h] = true
	}
	hotHits, draws := 0, 0
	for trial := 0; trial < 2000; trial++ {
		members := drawMembers(rng, nodes, k, hot, 0.8, nil)
		for _, v := range members[1:] { // destinations only; the source is uniform
			draws++
			if inHot[v] {
				hotHits++
			}
		}
	}
	// Uniform share would be 4/64 = 6.25%; with HotFrac 0.8 and only 4
	// hot nodes against k-1=7 distinct destinations the realized share
	// is bounded by rejection, but must still dominate the uniform rate.
	if frac := float64(hotHits) / float64(draws); frac < 0.3 {
		t.Fatalf("hot set drew only %.1f%% of destinations under 80%% skew", frac*100)
	}
}
