package core

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// TestOptSplitStructure: the DP's split sizes are non-decreasing in i and
// grow by at most one per step — the structural property Algorithm 2.1's
// O(k) bound rests on.
func TestOptSplitStructure(t *testing.T) {
	f := func(hr, er uint16, kr uint8) bool {
		h := model.Time(hr % 1000)
		e := h + model.Time(er%1000) + 1
		k := int(kr%100) + 3
		ot := NewOptTable(k, h, e)
		for i := 3; i <= k; i++ {
			d := ot.J(i) - ot.J(i-1)
			if d < 0 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestOptLatencySubadditive: adding a destination costs at most one more
// t_end (the source could always serve it last with one extra send after
// everything else, bounded by t[k] + max(t_hold, t_end)).
func TestOptLatencyIncrementBounded(t *testing.T) {
	f := func(hr, er uint16, kr uint8) bool {
		h := model.Time(hr % 500)
		e := h + model.Time(er%500) + 1
		k := int(kr%80) + 2
		ot := NewOptTable(k, h, e)
		return ot.T(k)-ot.T(k-1) <= e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLatencyAgreesWithPaperFormWhenHoldLeqEnd: the delivery-semantics
// recurrence in Latency equals the paper's literal recurrence (with the
// unconditional t[j]+t_hold term) whenever t_hold <= t_end.
func TestLatencyAgreesWithPaperForm(t *testing.T) {
	paperLatency := func(tab SplitTable, k int, h, e model.Time) model.Time {
		memo := make([]model.Time, k+1)
		for n := 2; n <= k; n++ {
			j := tab.J(n)
			a, b := memo[j]+h, memo[n-j]+e
			if a > b {
				memo[n] = a
			} else {
				memo[n] = b
			}
		}
		return memo[k]
	}
	f := func(hr, er uint16, kr uint8) bool {
		h := model.Time(hr % 400)
		e := h + model.Time(er%400) // h <= e
		if e == 0 {
			e = 1
		}
		k := int(kr%60) + 1
		for _, tab := range []SplitTable{
			NewOptTable(k, h, e),
			BinomialTable{Max: k},
			SequentialTable{Max: k},
		} {
			if Latency(tab, k, h, e) != paperLatency(tab, k, h, e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
