package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// Tree is an explicit multicast tree. Node identifiers are opaque integers
// (typically network addresses or chain indices). Children are stored in
// the order the parent sends to them, which matters: under the
// parameterized model the i-th send (0-based) leaves i*t_hold after the
// parent becomes ready.
type Tree struct {
	Node     int
	Children []*Tree
}

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int {
	if t == nil {
		return 0
	}
	n := 1
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

// Depth returns the number of edges on the longest root-to-leaf path.
func (t *Tree) Depth() int {
	if t == nil {
		return 0
	}
	d := 0
	for _, c := range t.Children {
		if cd := c.Depth() + 1; cd > d {
			d = cd
		}
	}
	return d
}

// MaxFanout returns the largest number of children of any node.
func (t *Tree) MaxFanout() int {
	if t == nil {
		return 0
	}
	f := len(t.Children)
	for _, c := range t.Children {
		if cf := c.MaxFanout(); cf > f {
			f = cf
		}
	}
	return f
}

// Nodes returns every node identifier in the tree, in preorder.
func (t *Tree) Nodes() []int {
	var out []int
	var walk func(*Tree)
	walk = func(n *Tree) {
		if n == nil {
			return
		}
		out = append(out, n.Node)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t)
	return out
}

// Eval returns the contention-free multicast latency of the tree under the
// parameterized model: each node issues its sends in child order spaced
// t_hold apart (the first leaves immediately when the node becomes ready),
// and a message sent at time s is fully delivered at s + t_end. The
// latency is the time the last node finishes receiving.
func (t *Tree) Eval(thold, tend model.Time) model.Time {
	if t == nil {
		return 0
	}
	return t.finish(0, thold, tend)
}

func (t *Tree) finish(ready model.Time, thold, tend model.Time) model.Time {
	latest := ready
	for i, c := range t.Children {
		arrive := ready + model.Time(i)*thold + tend
		if f := c.finish(arrive, thold, tend); f > latest {
			latest = f
		}
	}
	return latest
}

// Arrivals returns the time each node finishes receiving the message,
// keyed by node identifier. The root's entry is 0.
func (t *Tree) Arrivals(thold, tend model.Time) map[int]model.Time {
	out := make(map[int]model.Time, t.Size())
	var walk func(n *Tree, ready model.Time)
	walk = func(n *Tree, ready model.Time) {
		out[n.Node] = ready
		for i, c := range n.Children {
			walk(c, ready+model.Time(i)*thold+tend)
		}
	}
	if t != nil {
		walk(t, 0)
	}
	return out
}

// Sends returns the total number of messages transmitted (tree edges).
func (t *Tree) Sends() int {
	if t == nil {
		return 0
	}
	return t.Size() - 1
}

// String renders the tree as an indented outline, children in send order.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *Tree, depth int)
	walk = func(n *Tree, depth int) {
		fmt.Fprintf(&b, "%s%d\n", strings.Repeat("  ", depth), n.Node)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	if t != nil {
		walk(t, 0)
	}
	return b.String()
}

// Validate checks structural invariants: no duplicate node identifiers and
// no nil children. It returns a descriptive error on the first violation.
func (t *Tree) Validate() error {
	if t == nil {
		return fmt.Errorf("core: nil tree")
	}
	seen := make(map[int]bool)
	var walk func(n *Tree) error
	walk = func(n *Tree) error {
		if n == nil {
			return fmt.Errorf("core: nil child in tree")
		}
		if seen[n.Node] {
			return fmt.Errorf("core: duplicate node %d in tree", n.Node)
		}
		seen[n.Node] = true
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t)
}

// Relabel returns a copy of the tree with every node identifier mapped
// through f. Useful for converting chain-index trees into address trees.
func (t *Tree) Relabel(f func(int) int) *Tree {
	if t == nil {
		return nil
	}
	out := &Tree{Node: f(t.Node)}
	if len(t.Children) > 0 {
		out.Children = make([]*Tree, len(t.Children))
		for i, c := range t.Children {
			out.Children[i] = c.Relabel(f)
		}
	}
	return out
}

// SortedNodes returns the node identifiers in ascending order; convenient
// for set comparisons in tests.
func (t *Tree) SortedNodes() []int {
	ns := t.Nodes()
	sort.Ints(ns)
	return ns
}
