// Package core implements the architecture-independent half of the paper:
// the OPT-tree algorithm (Algorithm 2.1), which constructs provably optimal
// multicast trees from the two parameters t_hold and t_end of the
// parameterized communication model, together with tree data structures,
// an analytic (contention-free) latency evaluator, and reference split
// functions for the binomial (U-mesh/U-min) and sequential baselines.
//
// The central object is the split table: for a multicast over i nodes
// (one source plus i-1 destinations), J(i) is the number of nodes that
// remain in the subtree containing the source after its first send, and
// T(i) is the minimum achievable multicast latency. The recurrence is
//
//	T(1) = 0
//	T(2) = t_end
//	T(i) = min over j of max( T(j) + t_hold, T(i-j) + t_end )
//
// where j is the size of the source-side part. The paper's O(k) algorithm
// exploits that the optimal j is non-decreasing in i and grows by at most
// one per step, so only j(i-1) and j(i-1)+1 need to be compared.
package core

import (
	"fmt"

	"repro/internal/model"
)

// SplitTable holds the output of a tree-shaping algorithm: for every
// multicast size i in [1, K], the size J(i) of the part that keeps the
// source after the first send. OPT, binomial and sequential trees are all
// expressed this way, which lets the architecture-dependent planners of
// package plan implement U-mesh, U-min, OPT-mesh and OPT-min uniformly.
type SplitTable interface {
	// K is the largest supported multicast size.
	K() int
	// J returns the source-side part size for a multicast of i nodes,
	// with 2 <= i <= K and 1 <= J(i) <= i-1.
	J(i int) int
}

// OptTable is the result of the OPT-tree dynamic program for fixed
// (t_hold, t_end): the optimal split sizes and optimal latencies for every
// multicast size up to K.
type OptTable struct {
	THold, TEnd model.Time

	j []int        // j[i] for i in [2,k]; index i
	t []model.Time // t[i] for i in [1,k]; index i
}

// NewOptTable runs Algorithm 2.1 and returns the optimal split table for
// multicasts of up to k nodes under the given parameters. It runs in O(k)
// time and panics if k < 1 or either parameter is negative.
func NewOptTable(k int, thold, tend model.Time) *OptTable {
	if k < 1 {
		panic(fmt.Sprintf("core: NewOptTable k=%d < 1", k))
	}
	if thold < 0 || tend < 0 {
		panic(fmt.Sprintf("core: NewOptTable negative parameters t_hold=%d t_end=%d", thold, tend))
	}
	ot := &OptTable{
		THold: thold,
		TEnd:  tend,
		j:     make([]int, k+1),
		t:     make([]model.Time, k+1),
	}
	ot.t[1] = 0
	if k >= 2 {
		ot.t[2] = tend
		ot.j[2] = 1
	}
	for i := 3; i <= k; i++ {
		j := ot.j[i-1]
		// Option A: keep the same split size as for i-1 nodes.
		a := maxTime(ot.t[j]+thold, ot.t[i-j]+tend)
		// Option B: grow the source-side part by one.
		b := maxTime(ot.t[j+1]+thold, ot.t[i-1-j]+tend)
		if a < b {
			ot.t[i] = a
			ot.j[i] = j
		} else {
			ot.t[i] = b
			ot.j[i] = j + 1
		}
	}
	return ot
}

// K returns the largest multicast size covered by the table.
func (ot *OptTable) K() int { return len(ot.t) - 1 }

// J returns the optimal source-side part size for a multicast of i nodes.
func (ot *OptTable) J(i int) int {
	if i < 2 || i > ot.K() {
		panic(fmt.Sprintf("core: OptTable.J(%d) out of range [2,%d]", i, ot.K()))
	}
	return ot.j[i]
}

// T returns the optimal (contention-free) multicast latency for i nodes.
func (ot *OptTable) T(i int) model.Time {
	if i < 1 || i > ot.K() {
		panic(fmt.Sprintf("core: OptTable.T(%d) out of range [1,%d]", i, ot.K()))
	}
	return ot.t[i]
}

// BinomialTable is the split table of the binomial (recursive doubling)
// multicast tree used by the U-mesh and U-min algorithms: the source-side
// part keeps ceil(i/2) nodes at every step. Binomial trees are optimal
// exactly when t_hold = t_end.
type BinomialTable struct{ Max int }

// K returns the largest supported multicast size.
func (b BinomialTable) K() int { return b.Max }

// J returns ceil(i/2), the binomial split.
func (b BinomialTable) J(i int) int {
	if i < 2 || i > b.Max {
		panic(fmt.Sprintf("core: BinomialTable.J(%d) out of range [2,%d]", i, b.Max))
	}
	return (i + 1) / 2
}

// SequentialTable is the split table of the sequential (separate
// addressing) tree: the source sends to one destination at a time and no
// destination ever forwards. It approaches optimality as t_hold grows
// relative to t_end.
type SequentialTable struct{ Max int }

// K returns the largest supported multicast size.
func (s SequentialTable) K() int { return s.Max }

// J returns i-1: the source-side part gives away a single node per send.
func (s SequentialTable) J(i int) int {
	if i < 2 || i > s.Max {
		panic(fmt.Sprintf("core: SequentialTable.J(%d) out of range [2,%d]", i, s.Max))
	}
	return i - 1
}

// ChainTable is the split table of the forwarding-chain tree: the source
// sends once and every node forwards to exactly one successor. It is the
// mirror image of SequentialTable and is included for analytic studies; it
// cannot be planned over an arbitrary source position (the source-side
// part has size 1), so package plan rejects it unless the source leads its
// segment.
type ChainTable struct{ Max int }

// K returns the largest supported multicast size.
func (c ChainTable) K() int { return c.Max }

// J returns 1: the source keeps only itself.
func (c ChainTable) J(i int) int {
	if i < 2 || i > c.Max {
		panic(fmt.Sprintf("core: ChainTable.J(%d) out of range [2,%d]", i, c.Max))
	}
	return 1
}

// Latency evaluates the contention-free multicast latency of the tree
// family described by a split table, for a multicast of i nodes, in
// delivery semantics (the multicast completes when the last node finishes
// receiving):
//
//	L(1) = 0
//	L(i) = max( L(i-J(i)) + t_end,  L(J(i)) + t_hold if J(i) > 1 else 0 )
//
// The paper's recurrence writes the source-side term as t[J(i)] + t_hold
// unconditionally; for t_hold <= t_end (the paper's regime) the two forms
// are provably identical because the t_end term dominates whenever
// J(i) = 1, and the tests assert this equivalence. The conditional form
// additionally evaluates t_hold > t_end tree shapes correctly.
func Latency(tab SplitTable, i int, thold, tend model.Time) model.Time {
	if i < 1 || i > tab.K() {
		panic(fmt.Sprintf("core: Latency(%d) out of range [1,%d]", i, tab.K()))
	}
	memo := make([]model.Time, i+1)
	for n := 2; n <= i; n++ {
		j := tab.J(n)
		memo[n] = memo[n-j] + tend
		if j > 1 && memo[j]+thold > memo[n] {
			memo[n] = memo[j] + thold
		}
	}
	return memo[i]
}

// OptimalLatency computes the true optimal multicast latency for k nodes
// by evaluating the full recurrence (minimizing over every split size, not
// just the two candidates of Algorithm 2.1), in the same delivery
// semantics as Latency. It runs in O(k^2) time and is used as an oracle to
// validate the O(k) algorithm.
func OptimalLatency(k int, thold, tend model.Time) model.Time {
	if k < 1 {
		panic(fmt.Sprintf("core: OptimalLatency k=%d < 1", k))
	}
	t := make([]model.Time, k+1)
	for i := 2; i <= k; i++ {
		best := model.Time(1<<62 - 1)
		for j := 1; j <= i-1; j++ {
			v := t[i-j] + tend
			if j > 1 && t[j]+thold > v {
				v = t[j] + thold
			}
			if v < best {
				best = v
			}
		}
		t[i] = best
	}
	return t[k]
}

func maxTime(a, b model.Time) model.Time {
	if a > b {
		return a
	}
	return b
}
