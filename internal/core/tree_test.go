package core

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func binomialTree(nodes []int) *Tree {
	// Recursive doubling over the slice: root keeps the first ceil(n/2)
	// nodes and sends to the head of the rest.
	if len(nodes) == 0 {
		return nil
	}
	t := &Tree{Node: nodes[0]}
	// Build by repeatedly splitting off the far half (send order:
	// largest subtree first), mirroring BinomialTable splits with the
	// source at position 0.
	lo, hi := 0, len(nodes)-1 // responsibility over nodes[lo..hi], self at 0
	for lo < hi {
		i := hi - lo + 1
		j := (i + 1) / 2
		t.Children = append(t.Children, binomialTree(nodes[lo+j:hi+1]))
		hi = lo + j - 1
	}
	return t
}

// TestTreeEvalBinomialEight: explicit 8-node binomial tree evaluates to
// the paper's 165 under (20, 55).
func TestTreeEvalBinomialEight(t *testing.T) {
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7}
	tr := binomialTree(ids)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Eval(20, 55); got != 165 {
		t.Fatalf("binomial tree eval = %d, want 165\n%s", got, tr)
	}
}

// TestTreeEvalMatchesSplitLatency: for the binomial split table, the
// explicit tree evaluation must equal the recurrence-based Latency.
func TestTreeEvalMatchesSplitLatency(t *testing.T) {
	for k := 1; k <= 33; k++ {
		ids := make([]int, k)
		for i := range ids {
			ids[i] = i
		}
		tr := binomialTree(ids)
		for _, p := range []struct{ h, e model.Time }{{20, 55}, {7, 7}, {1, 100}} {
			want := Latency(BinomialTable{Max: k}, k, p.h, p.e)
			if got := tr.Eval(p.h, p.e); got != want {
				t.Fatalf("k=%d h=%d e=%d: tree eval %d != recurrence %d", k, p.h, p.e, got, want)
			}
		}
	}
}

// TestTreeShapeAccessors exercises Size, Depth, MaxFanout, Sends, Nodes.
func TestTreeShapeAccessors(t *testing.T) {
	tr := &Tree{Node: 10, Children: []*Tree{
		{Node: 20, Children: []*Tree{{Node: 40}}},
		{Node: 30},
	}}
	if tr.Size() != 4 {
		t.Errorf("Size = %d, want 4", tr.Size())
	}
	if tr.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", tr.Depth())
	}
	if tr.MaxFanout() != 2 {
		t.Errorf("MaxFanout = %d, want 2", tr.MaxFanout())
	}
	if tr.Sends() != 3 {
		t.Errorf("Sends = %d, want 3", tr.Sends())
	}
	want := []int{10, 20, 40, 30}
	got := tr.Nodes()
	if len(got) != len(want) {
		t.Fatalf("Nodes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes = %v, want %v", got, want)
		}
	}
}

// TestTreeArrivalsChildOrder: arrivals reflect send order — the second
// child receives one t_hold later than the first.
func TestTreeArrivalsChildOrder(t *testing.T) {
	tr := &Tree{Node: 0, Children: []*Tree{{Node: 1}, {Node: 2}, {Node: 3}}}
	arr := tr.Arrivals(20, 55)
	if arr[0] != 0 || arr[1] != 55 || arr[2] != 75 || arr[3] != 95 {
		t.Fatalf("arrivals = %v, want [0 55 75 95]", arr)
	}
}

// TestTreeEvalDegenerate: empty and single-node trees.
func TestTreeEvalDegenerate(t *testing.T) {
	var nilTree *Tree
	if nilTree.Eval(1, 2) != 0 || nilTree.Size() != 0 || nilTree.Depth() != 0 {
		t.Fatal("nil tree should be a zero-latency empty tree")
	}
	single := &Tree{Node: 5}
	if single.Eval(20, 55) != 0 {
		t.Fatalf("single-node eval = %d, want 0", single.Eval(20, 55))
	}
}

// TestTreeValidateRejectsDuplicates and nils.
func TestTreeValidate(t *testing.T) {
	dup := &Tree{Node: 1, Children: []*Tree{{Node: 1}}}
	if dup.Validate() == nil {
		t.Error("duplicate node not detected")
	}
	hasNil := &Tree{Node: 1, Children: []*Tree{nil}}
	if hasNil.Validate() == nil {
		t.Error("nil child not detected")
	}
	var none *Tree
	if none.Validate() == nil {
		t.Error("nil tree not detected")
	}
	ok := &Tree{Node: 1, Children: []*Tree{{Node: 2}, {Node: 3}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
}

// TestTreeRelabel maps identities and preserves structure.
func TestTreeRelabel(t *testing.T) {
	tr := &Tree{Node: 0, Children: []*Tree{{Node: 1}, {Node: 2, Children: []*Tree{{Node: 3}}}}}
	addr := []int{100, 200, 300, 400}
	re := tr.Relabel(func(i int) int { return addr[i] })
	if re.Node != 100 || re.Children[1].Children[0].Node != 400 {
		t.Fatalf("relabel wrong: %s", re)
	}
	if tr.Node != 0 {
		t.Fatal("relabel mutated the original")
	}
	if re.Eval(20, 55) != tr.Eval(20, 55) {
		t.Fatal("relabel changed latency")
	}
}

// TestTreeEvalMonotoneInParams: raising either parameter can only raise
// the evaluated latency, for random binomial trees.
func TestTreeEvalMonotoneInParams(t *testing.T) {
	f := func(kr uint8, h1, e1, dh, de uint8) bool {
		k := int(kr%30) + 1
		ids := make([]int, k)
		for i := range ids {
			ids[i] = i
		}
		tr := binomialTree(ids)
		h, e := model.Time(h1), model.Time(e1)
		base := tr.Eval(h, e)
		return tr.Eval(h+model.Time(dh), e+model.Time(de)) >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
