package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// TestPaperExampleOptLatency reproduces the worked example of the paper's
// Figure 1: t_hold = 20, t_end = 55, eight nodes (source + 7
// destinations). The OPT tree achieves latency 130.
func TestPaperExampleOptLatency(t *testing.T) {
	ot := NewOptTable(8, 20, 55)
	if got := ot.T(8); got != 130 {
		t.Fatalf("OPT latency for 8 nodes (t_hold=20, t_end=55) = %d, paper says 130", got)
	}
}

// TestPaperExampleBinomialLatency reproduces the other half of Figure 1:
// the U-mesh (binomial) tree with the same parameters has latency 165.
func TestPaperExampleBinomialLatency(t *testing.T) {
	got := Latency(BinomialTable{Max: 8}, 8, 20, 55)
	if got != 165 {
		t.Fatalf("binomial latency for 8 nodes (t_hold=20, t_end=55) = %d, paper says 165", got)
	}
}

// TestOptTableSmallValues walks the DP by hand for the paper-example
// parameters and checks every intermediate t[i].
func TestOptTableSmallValues(t *testing.T) {
	ot := NewOptTable(8, 20, 55)
	want := []model.Time{0, 0, 55, 75, 95, 110, 115, 130, 130}
	for i := 1; i <= 8; i++ {
		if ot.T(i) != want[i] {
			t.Errorf("t[%d] = %d, want %d", i, ot.T(i), want[i])
		}
	}
}

// TestOptMatchesExhaustive validates the O(k) two-candidate DP against the
// full O(k^2) minimization for a grid of parameter ratios and sizes.
func TestOptMatchesExhaustive(t *testing.T) {
	params := []struct{ h, e model.Time }{
		{1, 1}, {1, 2}, {1, 5}, {20, 55}, {3, 7}, {10, 11}, {1, 100}, {7, 7},
		{0, 1}, {0, 5}, {5, 5},
	}
	for _, p := range params {
		ot := NewOptTable(64, p.h, p.e)
		for k := 1; k <= 64; k++ {
			want := OptimalLatency(k, p.h, p.e)
			if got := ot.T(k); got != want {
				t.Fatalf("h=%d e=%d k=%d: DP latency %d != exhaustive %d", p.h, p.e, k, got, want)
			}
		}
	}
}

// TestOptMatchesExhaustiveQuick property-checks DP optimality on random
// parameters.
func TestOptMatchesExhaustiveQuick(t *testing.T) {
	f := func(hr, er uint16, kr uint8) bool {
		h := model.Time(hr % 500)
		e := h + model.Time(er%500) // keep t_hold <= t_end, the paper's regime
		if e == 0 {
			e = 1
		}
		k := int(kr%40) + 1
		return NewOptTable(k, h, e).T(k) == OptimalLatency(k, h, e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestOptSplitMajority verifies the invariant the planners rely on: with
// t_hold <= t_end the optimal source-side part always keeps at least half
// the nodes, J(i) >= ceil(i/2).
func TestOptSplitMajority(t *testing.T) {
	f := func(hr, er uint16, kr uint8) bool {
		h := model.Time(hr % 1000)
		e := h + model.Time(er%1000)
		if e == 0 {
			e = 1
		}
		k := int(kr%60) + 2
		ot := NewOptTable(k, h, e)
		for i := 2; i <= k; i++ {
			if ot.J(i) < (i+1)/2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestOptLatencyMonotonic checks t[i] is non-decreasing in i and
// non-decreasing in each parameter.
func TestOptLatencyMonotonic(t *testing.T) {
	ot := NewOptTable(100, 20, 55)
	for i := 2; i <= 100; i++ {
		if ot.T(i) < ot.T(i-1) {
			t.Fatalf("t[%d]=%d < t[%d]=%d", i, ot.T(i), i-1, ot.T(i-1))
		}
	}
	for k := 2; k <= 40; k++ {
		a := NewOptTable(k, 20, 55).T(k)
		b := NewOptTable(k, 21, 55).T(k)
		c := NewOptTable(k, 20, 56).T(k)
		if b < a || c < a {
			t.Fatalf("k=%d: latency not monotone in parameters: base=%d, +hold=%d, +end=%d", k, a, b, c)
		}
	}
}

// TestOptEqualsBinomialWhenHoldEqualsEnd: binomial trees are optimal
// exactly in the t_hold = t_end regime, where the OPT latency must equal
// the binomial latency ceil(log2 k)*t_end.
func TestOptEqualsBinomialWhenHoldEqualsEnd(t *testing.T) {
	const e = 37
	ot := NewOptTable(256, e, e)
	for k := 1; k <= 256; k++ {
		rounds := model.Time(0)
		for n := 1; n < k; n *= 2 {
			rounds++
		}
		if got, want := ot.T(k), rounds*e; got != want {
			t.Fatalf("k=%d: OPT latency %d, want binomial %d", k, got, want)
		}
		if got := Latency(BinomialTable{Max: 256}, k, e, e); got != ot.T(k) {
			t.Fatalf("k=%d: binomial %d != OPT %d with t_hold=t_end", k, got, ot.T(k))
		}
	}
}

// TestOptNeverWorseThanBaselines: the OPT latency lower-bounds binomial
// and sequential trees for any parameters.
func TestOptNeverWorseThanBaselines(t *testing.T) {
	f := func(hr, er uint16, kr uint8) bool {
		h := model.Time(hr % 300)
		e := model.Time(er%300) + 1
		k := int(kr%50) + 1
		opt := NewOptTable(k, h, e).T(k)
		bin := Latency(BinomialTable{Max: k + 1}, k, h, e)
		seq := Latency(SequentialTable{Max: k + 1}, k, h, e)
		return opt <= bin && opt <= seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSequentialBeatsBinomialWhenHoldSmall demonstrates the paper's §1
// claim: the binomial tree "may be outperformed in some networks by ...
// a sequential tree". With t_hold much smaller than t_end, separate
// addressing wins.
func TestSequentialBeatsBinomialWhenHoldSmall(t *testing.T) {
	const h, e, k = 1, 1000, 16
	seq := Latency(SequentialTable{Max: k}, k, h, e)
	bin := Latency(BinomialTable{Max: k}, k, h, e)
	if seq >= bin {
		t.Fatalf("sequential %d should beat binomial %d when t_hold << t_end", seq, bin)
	}
}

// TestSequentialLatencyClosedForm: with t_hold >= t_end the sequential
// tree costs (k-2)*t_hold + t_end for k >= 2.
func TestSequentialLatencyClosedForm(t *testing.T) {
	for k := 2; k <= 40; k++ {
		got := Latency(SequentialTable{Max: k}, k, 50, 30)
		want := model.Time(k-2)*50 + 30
		if got != want {
			t.Fatalf("k=%d: sequential latency %d, want %d", k, got, want)
		}
	}
}

// TestChainTableLatency: the forwarding chain costs
// t_end*(k-1) when t_hold <= t_end.
func TestChainTableLatency(t *testing.T) {
	for k := 2; k <= 20; k++ {
		got := Latency(ChainTable{Max: k}, k, 10, 55)
		if want := model.Time(k-1) * 55; got != want {
			t.Fatalf("k=%d: chain latency %d, want %d", k, got, want)
		}
	}
}

// TestSplitTableBounds checks the documented panics on out-of-range use.
func TestSplitTableBounds(t *testing.T) {
	cases := []func(){
		func() { NewOptTable(0, 1, 1) },
		func() { NewOptTable(4, -1, 1) },
		func() { NewOptTable(4, 1, -1) },
		func() { NewOptTable(4, 1, 1).J(1) },
		func() { NewOptTable(4, 1, 1).J(5) },
		func() { NewOptTable(4, 1, 1).T(0) },
		func() { BinomialTable{Max: 4}.J(5) },
		func() { SequentialTable{Max: 4}.J(1) },
		func() { ChainTable{Max: 4}.J(0) },
		func() { Latency(BinomialTable{Max: 4}, 5, 1, 1) },
		func() { OptimalLatency(0, 1, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestOptTableDeterministic: same inputs, same table.
func TestOptTableDeterministic(t *testing.T) {
	a := NewOptTable(128, 20, 55)
	b := NewOptTable(128, 20, 55)
	for i := 2; i <= 128; i++ {
		if a.J(i) != b.J(i) || a.T(i) != b.T(i) {
			t.Fatalf("tables diverge at i=%d", i)
		}
	}
}

// TestOptLatencyGrowthLogarithmicAtEquality sanity-checks asymptotics:
// with t_hold = t_end the latency is Theta(log k); with t_hold = 0 the
// latency is t_end * ceil(log... it stays bounded by e * ceil(log2 k).
func TestOptLatencyGrowthBounds(t *testing.T) {
	const e = 100
	for _, h := range []model.Time{0, 1, 50, 100} {
		ot := NewOptTable(1024, h, e)
		for _, k := range []int{2, 16, 128, 1024} {
			logk := model.Time(math.Ceil(math.Log2(float64(k))))
			upper := logk * e
			if ot.T(k) > upper {
				t.Fatalf("h=%d k=%d: OPT latency %d exceeds binomial bound %d", h, k, ot.T(k), upper)
			}
			if ot.T(k) < e {
				t.Fatalf("h=%d k=%d: OPT latency %d below single-message bound %d", h, k, ot.T(k), e)
			}
		}
	}
}
