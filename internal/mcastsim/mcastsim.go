// Package mcastsim executes software multicast algorithms on the
// flit-level wormhole simulator, applying the parameterized model's
// software costs at every node.
//
// The runtime mirrors how unicast-based multicast actually executes: the
// source holds the full destination chain; every message carries the
// sub-chain segment its receiver becomes responsible for; on delivery a
// node re-derives its own sends from the split table (exactly the while
// loops of Algorithms 3.1/4.1) and issues them back-to-back, spaced
// t_hold apart. Nothing is globally scheduled — latency, pipelining and
// contention emerge from the fabric simulation.
package mcastsim

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/wormhole"
)

// Config parameterizes one multicast execution.
type Config struct {
	// Software holds t_send, t_recv and t_hold.
	Software model.Software
	// AddrBytes, when positive, charges this many payload bytes per
	// destination address carried in a message (the paper notes that
	// "each message carries the addresses of the destinations for which
	// the receiving node is responsible"). Zero models address lists as
	// free, which is what the analytic model assumes.
	AddrBytes int
	// MaxCycles bounds the simulation as a safety net against routing
	// bugs; 0 means a generous default derived from the workload.
	MaxCycles int64
	// NoProgressCycles is the no-progress watchdog window: if no flit
	// moves fabric-wide for this many cycles while worms are in flight,
	// the run aborts with a diagnostic naming the stuck worms and the
	// hottest blocked channel (wormhole.Network.DeadlockReport). New sends
	// can never free a held channel, so a fabric-wide freeze longer than
	// the router pipeline is permanent — the only false-positive risk is a
	// fault model whose outage windows exceed the watchdog window, which
	// is why the window must stay well above them. 0 means the default
	// (4096 cycles); negative disables the watchdog. The effective window
	// is never below 2*RouterDelay+64.
	NoProgressCycles int64
}

// defaultNoProgress is the watchdog window used when
// Config.NoProgressCycles is 0.
const defaultNoProgress = 4096

// Watchdog aborts runs on a degraded or misrouted fabric that can no
// longer make progress, instead of spinning until the cycle deadline.
// It is exported so other drive loops over the same fabric (the
// open-system traffic engine) share one definition of "stuck" instead
// of drifting copies.
type Watchdog struct {
	net      *wormhole.Network
	window   int64 // <= 0: disabled
	lastHops int64
	lastMove int64
}

// NewWatchdog arms a watchdog over net using cfg's window settings
// (Config.NoProgressCycles semantics).
func NewWatchdog(net *wormhole.Network, cfg Config) Watchdog {
	w := cfg.NoProgressCycles
	if w == 0 {
		w = defaultNoProgress
	}
	if min := 2*net.Config().RouterDelay + 64; w > 0 && w < min {
		w = min
	}
	return Watchdog{net: net, window: w, lastHops: net.Stats().FlitHops, lastMove: net.Now()}
}

// Idled resets the movement clock after the driver fast-forwards an idle
// fabric (no worms in flight is not a stall).
func (wd *Watchdog) Idled() { wd.lastMove = wd.net.Now() }

// Check is called after every StepUntil. It surfaces unreachable-
// destination errors recorded by the fault layer and detects fabric-wide
// no-progress freezes.
func (wd *Watchdog) Check() error {
	if err := wd.net.Err(); err != nil {
		return fmt.Errorf("mcastsim: %w; %s", err, wd.net.DeadlockReport(8))
	}
	if h := wd.net.Stats().FlitHops; h != wd.lastHops {
		wd.lastHops, wd.lastMove = h, wd.net.Now()
		return nil
	}
	if wd.window > 0 && wd.net.Active() > 0 && wd.net.Now()-wd.lastMove >= wd.window {
		return fmt.Errorf("mcastsim: no flit moved for %d cycles (deadlocked or partitioned fabric); %s",
			wd.net.Now()-wd.lastMove, wd.net.DeadlockReport(8))
	}
	return nil
}

// Result reports one multicast execution.
type Result struct {
	// Latency is the multicast latency: the time the last destination
	// finished receiving (software receive overhead included), measured
	// from the source starting its first send at time 0.
	Latency int64
	// Deliveries holds each chain position's delivery-complete time
	// (the source's is 0).
	Deliveries []int64
	// Worms is the number of point-to-point messages sent.
	Worms int64
	// BlockedCycles is the total header-blocked time across all
	// messages: the network-contention metric. Contention-free
	// algorithms (OPT-mesh, U-mesh, OPT-min, U-min) must report 0.
	BlockedCycles int64
	// InjectWaitCycles is one-port serialization time at the sources.
	InjectWaitCycles int64
	// Cycles is how many fabric cycles were actually stepped (idle
	// software-only gaps are fast-forwarded and not counted).
	Cycles int64
}

// message is the Tag a worm carries: the chain segment the receiver
// becomes responsible for.
type message struct {
	seg chain.Segment
}

// Run executes a multicast of msgBytes payload over the given chain with
// the source at chain index root, shaping the tree with tab, on net
// (which must be freshly idle). It returns the execution report.
func Run(net *wormhole.Network, tab core.SplitTable, ch chain.Chain, root int, msgBytes int, cfg Config) (Result, error) {
	if err := ch.Validate(); err != nil {
		return Result{}, err
	}
	if root < 0 || root >= len(ch) {
		return Result{}, fmt.Errorf("mcastsim: root index %d outside chain of %d nodes", root, len(ch))
	}
	if len(ch) > tab.K() {
		return Result{}, fmt.Errorf("mcastsim: chain of %d nodes exceeds split table K=%d", len(ch), tab.K())
	}
	if msgBytes < 0 {
		return Result{}, fmt.Errorf("mcastsim: negative message size %d", msgBytes)
	}
	for _, a := range ch {
		if a < 0 || a >= net.Topology().NumNodes() {
			return Result{}, fmt.Errorf("mcastsim: chain address %d outside fabric of %d nodes", a, net.Topology().NumNodes())
		}
	}
	if err := net.Quiesced(); err != nil {
		return Result{}, fmt.Errorf("mcastsim: fabric not idle: %w", err)
	}

	r := &runner{
		net:    net,
		tab:    tab,
		ch:     ch,
		bytes:  msgBytes,
		cfg:    cfg,
		events: new(sim.EventQueue),
		res: Result{
			Deliveries: make([]int64, len(ch)),
		},
		t0: net.Now(),
	}
	for i := range r.res.Deliveries {
		r.res.Deliveries[i] = -1
	}

	var planErr error
	r.onPlanErr = func(err error) { planErr = err }
	r.deliver(root, chain.Segment{L: 0, R: len(ch) - 1}, r.t0)
	if planErr != nil {
		return Result{}, planErr
	}

	max := cfg.MaxCycles
	if max <= 0 {
		// Generous: every message fully serialized plus software costs.
		perMsg := int64(net.Config().Flits(msgBytes+cfg.AddrBytes*len(ch))) + int64(net.Topology().NumChannels())
		soft := cfg.Software.Send.At(msgBytes) + cfg.Software.Recv.At(msgBytes) + cfg.Software.Hold.At(msgBytes)
		max = (perMsg+soft+1024)*int64(len(ch)+1)*4 + 1<<20
	}

	startStats := net.Stats()
	deadline := r.t0 + max
	wd := NewWatchdog(net, cfg)
	for r.events.Len() > 0 || net.Active() > 0 {
		if net.Active() == 0 {
			net.AdvanceTo(r.events.NextTime())
			wd.Idled()
		}
		r.events.RunDue(net.Now())
		if planErr != nil {
			return Result{}, planErr
		}
		if net.Active() == 0 && r.events.Len() == 0 {
			break
		}
		if net.Active() > 0 {
			// Let the kernel fast-forward stalled stretches, but never
			// past the next software event (a pending send must inject at
			// its exact cycle) or the deadline check. AdvanceTo may have
			// legitimately leapt past a tiny deadline already, so keep the
			// limit in the future; the check below still fires.
			limit := deadline + 1
			if limit <= net.Now() {
				limit = net.Now() + 1
			}
			if r.events.Len() > 0 && r.events.NextTime() < limit {
				limit = r.events.NextTime()
			}
			net.StepUntil(limit)
			if err := wd.Check(); err != nil {
				return Result{}, err
			}
			if net.Now() > deadline {
				return Result{}, fmt.Errorf("mcastsim: multicast not complete after %d cycles (routing deadlock or misconfiguration); %s",
					max, net.DeadlockReport(8))
			}
		}
	}
	if err := net.Quiesced(); err != nil {
		return Result{}, fmt.Errorf("mcastsim: fabric did not quiesce: %w", err)
	}
	for i, d := range r.res.Deliveries {
		if d < 0 {
			return Result{}, fmt.Errorf("mcastsim: chain position %d (node %d) never received the message", i, ch[i])
		}
	}

	end := net.Stats()
	r.res.Worms = end.Worms - startStats.Worms
	r.res.BlockedCycles = end.BlockedCycles - startStats.BlockedCycles
	r.res.InjectWaitCycles = end.InjectWaitCycles - startStats.InjectWaitCycles
	r.res.Cycles = end.Cycles - startStats.Cycles
	return r.res, nil
}

type runner struct {
	net       *wormhole.Network
	tab       core.SplitTable
	ch        chain.Chain
	bytes     int
	cfg       Config
	events    *sim.EventQueue
	res       Result
	t0        int64
	onPlanErr func(error)
}

// deliver records that the node at chain index self has the message and
// responsibility for seg at time t, and schedules its sends.
func (r *runner) deliver(self int, seg chain.Segment, t int64) {
	r.res.Deliveries[self] = t - r.t0
	if lat := t - r.t0; lat > r.res.Latency {
		r.res.Latency = lat
	}
	sends, err := plan.Sends(r.tab, seg, self)
	if err != nil {
		r.onPlanErr(err)
		return
	}
	tHold := r.cfg.Software.Hold.At(r.bytes)
	tSend := r.cfg.Software.Send.At(r.bytes)
	for i, snd := range sends {
		issue := t + int64(i)*tHold
		injectAt := issue + tSend
		src := wormhole.NodeID(r.ch[self])
		dst := wormhole.NodeID(r.ch[snd.To])
		seg := snd.Seg
		toIdx := snd.To
		r.events.At(injectAt, func() {
			bytes := r.bytes + r.cfg.AddrBytes*(seg.Len()-1)
			r.net.Send(src, dst, bytes, message{seg: seg}, func(w *wormhole.Worm, now int64) {
				tRecv := r.cfg.Software.Recv.At(r.bytes)
				r.events.At(now+tRecv, func() {
					r.deliver(toIdx, seg, now+tRecv)
				})
			})
		})
	}
}

// Unicast measures one end-to-end point-to-point latency (t_end) between
// src and dst for the given message size: software send cost, fabric
// traversal, software receive cost. It is the micro-benchmark the
// calibration step uses to fit t_net, mirroring how the paper measures
// its parameters at user level.
func Unicast(net *wormhole.Network, src, dst int, msgBytes int, cfg Config) (int64, error) {
	ch := chain.Chain{src, dst}
	if src == dst {
		return 0, fmt.Errorf("mcastsim: unicast endpoints must differ")
	}
	tab := core.NewOptTable(2, 1, 1)
	res, err := Run(net, tab, ch, 0, msgBytes, cfg)
	if err != nil {
		return 0, err
	}
	return res.Latency, nil
}
