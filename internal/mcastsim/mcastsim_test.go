package mcastsim_test

import (
	"strings"
	"testing"

	"repro/internal/bmin"
	"repro/internal/chain"
	"repro/internal/core"
	. "repro/internal/mcastsim"
	"repro/internal/mesh"
	"repro/internal/model"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/wormhole"
)

// testSoft keeps t_hold at the sender's true occupancy: per-byte cost
// above the fabric injection rate (see model.DefaultSoftware).
var testSoft = model.Software{
	Send: model.Linear{Fixed: 200, PerByte: 0.15},
	Recv: model.Linear{Fixed: 200, PerByte: 0.15},
	Hold: model.Linear{Fixed: 200, PerByte: 0.15},
}

func meshNet() *wormhole.Network {
	return wormhole.New(mesh.New2D(16, 16), wormhole.DefaultConfig())
}

// placement draws k distinct addresses; the first is the source.
func placement(seed uint64, nodes, k int) []int {
	return sim.NewRNG(seed).Sample(nodes, k)
}

func meshChain(m *mesh.Mesh, addrs []int) (chain.Chain, int) {
	ch := chain.New(addrs, m.DimOrderLess)
	root, ok := ch.Index(addrs[0])
	if !ok {
		panic("source lost")
	}
	return ch, root
}

// TestUnicastPinnedLatency pins the full software+fabric end-to-end time:
// t_send before injection, the fabric formula, t_recv after consumption.
func TestUnicastPinnedLatency(t *testing.T) {
	m := mesh.New2D(16, 16)
	cfg := wormhole.DefaultConfig()
	net := wormhole.New(m, cfg)
	const bytes = 1024
	got, err := Unicast(net, 0, 255, bytes, Config{Software: testSoft})
	if err != nil {
		t.Fatal(err)
	}
	hops := int64(len(wormhole.PathChannels(m, 0, 255)))
	fabric := 2 + (hops-1)*(1+cfg.RouterDelay) + int64(cfg.Flits(bytes))
	want := testSoft.Send.At(bytes) + fabric + testSoft.Recv.At(bytes)
	if got != want {
		t.Fatalf("unicast latency %d, want %d", got, want)
	}
}

func TestUnicastRejectsSelf(t *testing.T) {
	if _, err := Unicast(meshNet(), 3, 3, 64, Config{Software: testSoft}); err == nil {
		t.Fatal("self unicast accepted")
	}
}

// TestOptMeshZeroContention is Theorem 1, end to end: OPT trees planned
// over the dimension-ordered chain never block a single header cycle.
func TestOptMeshZeroContention(t *testing.T) {
	m := mesh.New2D(16, 16)
	tab := core.NewOptTable(16, 441, 1400)
	for seed := uint64(0); seed < 12; seed++ {
		ch, root := meshChain(m, placement(seed, 256, 16))
		res, err := Run(wormhole.New(m, wormhole.DefaultConfig()), tab, ch, root, 2048, Config{Software: testSoft})
		if err != nil {
			t.Fatal(err)
		}
		if res.BlockedCycles != 0 {
			t.Fatalf("seed %d: OPT-mesh blocked %d cycles", seed, res.BlockedCycles)
		}
	}
}

// TestUMeshZeroContention: the binomial U-mesh tree over the same chain is
// also contention-free (McKinley et al.).
func TestUMeshZeroContention(t *testing.T) {
	m := mesh.New2D(16, 16)
	tab := core.BinomialTable{Max: 16}
	for seed := uint64(100); seed < 112; seed++ {
		ch, root := meshChain(m, placement(seed, 256, 16))
		res, err := Run(wormhole.New(m, wormhole.DefaultConfig()), tab, ch, root, 2048, Config{Software: testSoft})
		if err != nil {
			t.Fatal(err)
		}
		if res.BlockedCycles != 0 {
			t.Fatalf("seed %d: U-mesh blocked %d cycles", seed, res.BlockedCycles)
		}
	}
}

// TestOptTreeRandomOrderContends: without architecture-dependent node
// ordering the same tree shape does hit contention on some placements —
// the phenomenon the paper's tuning removes.
func TestOptTreeRandomOrderContends(t *testing.T) {
	m := mesh.New2D(16, 16)
	tab := core.NewOptTable(32, 441, 1400)
	var total int64
	for seed := uint64(0); seed < 8; seed++ {
		addrs := placement(seed, 256, 32)
		ch := chain.Unordered(addrs)
		res, err := Run(wormhole.New(m, wormhole.DefaultConfig()), tab, ch, 0, 4096, Config{Software: testSoft})
		if err != nil {
			t.Fatal(err)
		}
		total += res.BlockedCycles
	}
	if total == 0 {
		t.Fatal("unordered OPT-tree never contended across 8 placements; contention modelling is broken")
	}
}

// TestWrongOrderingContends: sorting the chain by plain numeric address
// (most significant dimension != first-routed dimension) breaks the
// contention-freedom guarantee — evidence that the <_d pairing matters.
func TestWrongOrderingContends(t *testing.T) {
	m := mesh.New2D(16, 16)
	tab := core.BinomialTable{Max: 32}
	var total int64
	for seed := uint64(0); seed < 10; seed++ {
		addrs := placement(seed, 256, 32)
		ch := chain.New(addrs, func(a, b int) bool { return a < b })
		root, _ := ch.Index(addrs[0])
		res, err := Run(wormhole.New(m, wormhole.DefaultConfig()), tab, ch, root, 4096, Config{Software: testSoft})
		if err != nil {
			t.Fatal(err)
		}
		total += res.BlockedCycles
	}
	if total == 0 {
		t.Fatal("numeric ordering never contended; the dimension-order test is vacuous")
	}
}

// TestOptMinUMinZeroContention is Theorem 2: on the BMIN with the straight
// ascent policy, both lexicographic-chain algorithms are contention-free.
func TestOptMinUMinZeroContention(t *testing.T) {
	b := bmin.New(128, bmin.AscentStraight)
	for _, tab := range []core.SplitTable{
		core.NewOptTable(16, 441, 1400),
		core.BinomialTable{Max: 16},
	} {
		for seed := uint64(200); seed < 210; seed++ {
			addrs := placement(seed, 128, 16)
			ch := chain.New(addrs, b.LexLess)
			root, _ := ch.Index(addrs[0])
			res, err := Run(wormhole.New(b, wormhole.DefaultConfig()), tab, ch, root, 2048, Config{Software: testSoft})
			if err != nil {
				t.Fatal(err)
			}
			if res.BlockedCycles != 0 {
				t.Fatalf("seed %d: blocked %d cycles on BMIN", seed, res.BlockedCycles)
			}
		}
	}
}

// TestSimulationMatchesAnalytic: for a contention-free run, the simulated
// multicast latency must match the analytic tree evaluation built from the
// simulator's own measured (t_hold, t_end) — up to the per-hop distance
// spread that the parameterized model deliberately abstracts away.
func TestSimulationMatchesAnalytic(t *testing.T) {
	m := mesh.New2D(16, 16)
	cfgW := wormhole.DefaultConfig()
	cfgM := Config{Software: testSoft}
	const bytes = 2048
	const k = 16

	// Measure t_end with a calibration unicast over an average-distance
	// pair, as the paper does at user level.
	tendMeasured, err := Unicast(wormhole.New(m, cfgW), m.Addr(0, 0), m.Addr(5, 5), bytes, cfgM)
	if err != nil {
		t.Fatal(err)
	}
	thold := testSoft.Hold.At(bytes)

	tab := core.NewOptTable(k, thold, tendMeasured)
	for seed := uint64(300); seed < 306; seed++ {
		ch, root := meshChain(m, placement(seed, 256, k))
		res, err := Run(wormhole.New(m, cfgW), tab, ch, root, bytes, cfgM)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := plan.Tree(tab, chain.Segment{L: 0, R: k - 1}, root)
		if err != nil {
			t.Fatal(err)
		}
		analytic := tree.Eval(thold, tendMeasured)
		// Tolerance: tree depth * max per-hop spread. The calibration
		// pair sits at distance 10; the worst pair differs by at most 20
		// hops, each costing (1+RouterDelay).
		tol := int64(tree.Depth()) * 20 * (1 + cfgW.RouterDelay)
		diff := res.Latency - analytic
		if diff < 0 {
			diff = -diff
		}
		if diff > tol {
			t.Fatalf("seed %d: simulated %d vs analytic %d (tolerance %d)", seed, res.Latency, analytic, tol)
		}
	}
}

// TestResultAccounting: every chain position is delivered exactly once,
// the message count is k-1, and the root's delivery time is 0.
func TestResultAccounting(t *testing.T) {
	m := mesh.New2D(8, 8)
	tab := core.NewOptTable(12, 441, 1400)
	ch, root := meshChain(m, placement(7, 64, 12))
	res, err := Run(wormhole.New(m, wormhole.DefaultConfig()), tab, ch, root, 512, Config{Software: testSoft})
	if err != nil {
		t.Fatal(err)
	}
	if res.Worms != 11 {
		t.Fatalf("worms = %d, want 11", res.Worms)
	}
	if res.Deliveries[root] != 0 {
		t.Fatalf("root delivery = %d", res.Deliveries[root])
	}
	var max int64
	for i, d := range res.Deliveries {
		if d < 0 {
			t.Fatalf("position %d undelivered", i)
		}
		if i != root && d == 0 {
			t.Fatalf("position %d delivered at time 0", i)
		}
		if d > max {
			max = d
		}
	}
	if res.Latency != max {
		t.Fatalf("latency %d != max delivery %d", res.Latency, max)
	}
}

// TestAddrPayloadIncreasesLatency: charging bytes for carried address
// lists lengthens the multicast. The binomial tree's critical path runs
// through the first (heaviest-laden) send at every level, so the effect
// must show up in the final latency, and every delivery can only get
// later.
func TestAddrPayloadIncreasesLatency(t *testing.T) {
	m := mesh.New2D(16, 16)
	tab := core.BinomialTable{Max: 32}
	ch, root := meshChain(m, placement(11, 256, 32))
	base, err := Run(wormhole.New(m, wormhole.DefaultConfig()), tab, ch, root, 1024, Config{Software: testSoft})
	if err != nil {
		t.Fatal(err)
	}
	withAddr, err := Run(wormhole.New(m, wormhole.DefaultConfig()), tab, ch, root, 1024, Config{Software: testSoft, AddrBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if withAddr.Latency <= base.Latency {
		t.Fatalf("address payload did not lengthen the multicast: %d vs %d", withAddr.Latency, base.Latency)
	}
	for i := range base.Deliveries {
		if withAddr.Deliveries[i] < base.Deliveries[i] {
			t.Fatalf("delivery %d got earlier with extra payload", i)
		}
	}
}

// TestOnePortBackpressure: when t_hold is much smaller than the injection
// time of a large message, successive sends queue at the one-port
// interface and record inject-wait.
func TestOnePortBackpressure(t *testing.T) {
	m := mesh.New2D(16, 16)
	soft := model.Software{
		Send: model.Linear{Fixed: 10},
		Recv: model.Linear{Fixed: 10},
		Hold: model.Linear{Fixed: 10},
	}
	tab := core.SequentialTable{Max: 8} // root sends 7 large messages back to back
	ch, root := meshChain(m, placement(13, 256, 8))
	res, err := Run(wormhole.New(m, wormhole.DefaultConfig()), tab, ch, root, 8192, Config{Software: soft})
	if err != nil {
		t.Fatal(err)
	}
	if res.InjectWaitCycles == 0 {
		t.Fatal("no inject-wait despite t_hold << injection time")
	}
}

// TestRunDeterministic: identical inputs give byte-identical results.
func TestRunDeterministic(t *testing.T) {
	m := mesh.New2D(16, 16)
	tab := core.NewOptTable(24, 441, 1400)
	run := func() Result {
		ch, root := meshChain(m, placement(17, 256, 24))
		res, err := Run(wormhole.New(m, wormhole.DefaultConfig()), tab, ch, root, 4096, Config{Software: testSoft})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Latency != b.Latency || a.BlockedCycles != b.BlockedCycles || a.Cycles != b.Cycles {
		t.Fatalf("runs diverged: %+v vs %+v", a, b)
	}
	for i := range a.Deliveries {
		if a.Deliveries[i] != b.Deliveries[i] {
			t.Fatalf("delivery %d diverged", i)
		}
	}
}

// TestSingleNodeMulticast: a chain of one completes instantly.
func TestSingleNodeMulticast(t *testing.T) {
	m := mesh.New2D(4, 4)
	tab := core.NewOptTable(1, 1, 1)
	res, err := Run(wormhole.New(m, wormhole.DefaultConfig()), tab, chain.Chain{5}, 0, 128, Config{Software: testSoft})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != 0 || res.Worms != 0 {
		t.Fatalf("single-node multicast: %+v", res)
	}
}

// TestRunArgumentErrors exercises every validation path.
func TestRunArgumentErrors(t *testing.T) {
	m := mesh.New2D(4, 4)
	tab := core.NewOptTable(4, 1, 2)
	net := wormhole.New(m, wormhole.DefaultConfig())
	cfg := Config{Software: testSoft}
	cases := []struct {
		name string
		fn   func() error
	}{
		{"dup chain", func() error { _, err := Run(net, tab, chain.Chain{1, 1}, 0, 8, cfg); return err }},
		{"root out of range", func() error { _, err := Run(net, tab, chain.Chain{1, 2}, 5, 8, cfg); return err }},
		{"chain too long", func() error { _, err := Run(net, tab, chain.Chain{0, 1, 2, 3, 4}, 0, 8, cfg); return err }},
		{"negative size", func() error { _, err := Run(net, tab, chain.Chain{1, 2}, 0, -1, cfg); return err }},
		{"address outside fabric", func() error { _, err := Run(net, tab, chain.Chain{1, 99}, 0, 8, cfg); return err }},
	}
	for _, c := range cases {
		if c.fn() == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestRunRejectsBusyFabric: a fabric with a worm in flight is refused.
func TestRunRejectsBusyFabric(t *testing.T) {
	m := mesh.New2D(4, 4)
	net := wormhole.New(m, wormhole.DefaultConfig())
	net.Send(0, 15, 1024, nil, nil)
	_, err := Run(net, core.NewOptTable(2, 1, 2), chain.Chain{0, 1}, 0, 8, Config{Software: testSoft})
	if err == nil || !strings.Contains(err.Error(), "not idle") {
		t.Fatalf("busy fabric accepted: %v", err)
	}
}

// TestRunMaxCyclesGuard: an absurdly small budget reports an error rather
// than hanging.
func TestRunMaxCyclesGuard(t *testing.T) {
	m := mesh.New2D(16, 16)
	tab := core.NewOptTable(8, 441, 1400)
	ch, root := meshChain(m, placement(19, 256, 8))
	_, err := Run(wormhole.New(m, wormhole.DefaultConfig()), tab, ch, root, 1<<16, Config{Software: testSoft, MaxCycles: 10})
	if err == nil {
		t.Fatal("expected cycle-budget error")
	}
}

// TestPlannerErrorSurfaces: an incompatible split table (ChainTable with a
// mid-chain source) propagates its planning error out of Run.
func TestPlannerErrorSurfaces(t *testing.T) {
	m := mesh.New2D(4, 4)
	tab := core.ChainTable{Max: 8}
	ch := chain.Chain{0, 1, 2, 3, 4, 5, 6, 7}
	_, err := Run(wormhole.New(m, wormhole.DefaultConfig()), tab, ch, 4, 64, Config{Software: testSoft})
	if err == nil {
		t.Fatal("planner incompatibility not surfaced")
	}
}

// TestLargerTreesStillQuiesce: a 64-node multicast on the full 16x16 mesh
// completes and quiesces with sequential, binomial and OPT shapes.
func TestLargerTreesStillQuiesce(t *testing.T) {
	m := mesh.New2D(16, 16)
	for _, tab := range []core.SplitTable{
		core.NewOptTable(64, 441, 1400),
		core.BinomialTable{Max: 64},
		core.SequentialTable{Max: 64},
	} {
		ch, root := meshChain(m, placement(23, 256, 64))
		res, err := Run(wormhole.New(m, wormhole.DefaultConfig()), tab, ch, root, 512, Config{Software: testSoft})
		if err != nil {
			t.Fatal(err)
		}
		if res.Worms != 63 {
			t.Fatalf("worms = %d", res.Worms)
		}
	}
}
