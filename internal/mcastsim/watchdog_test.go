package mcastsim_test

// Watchdog tests: a faulted fabric must turn every failure mode into a
// prompt, diagnostic error — never a hang. Partitions surface as
// unreachable-destination errors; a channel that accepts nothing (without
// being declared dead, so routing keeps waiting on it) trips the
// no-progress watchdog, whose error names the stuck worm and the hottest
// blocked channel.

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	. "repro/internal/mcastsim"
	"repro/internal/mesh"
	"repro/internal/wormhole"
)

// stuckChannel is a fault model with one channel that never accepts a
// flit yet is not reported dead: the router keeps offering it, the worm
// waits forever, and no flit in the fabric moves — the exact shape of a
// hardware hang the no-progress watchdog exists to catch. (A fault.Plan
// cannot express this: its down channels are either dead, degraded with
// a live duty cycle, or flaky with recovery windows.)
type stuckChannel struct{ c wormhole.ChannelID }

func (s stuckChannel) Dead(wormhole.ChannelID) bool          { return false }
func (s stuckChannel) Up(c wormhole.ChannelID, _ int64) bool { return c != s.c }

// TestWatchdogUnreachableSurfacesPromptly: a dead-link plan that strands
// a destination must abort the run with an error naming the worm's
// endpoints and carrying the deadlock report — well before the generous
// MaxCycles safety net.
func TestWatchdogUnreachableSurfacesPromptly(t *testing.T) {
	m := mesh.New2D(8, 8)
	addrs := placement(3, 64, 12)
	ch, root := meshChain(m, addrs)
	tab := core.BinomialTable{Max: 12}
	// Scan seeds for the first plan that strands this placement; the scan
	// is deterministic, so the failing seed is always the same.
	for seed := uint64(1); seed < 64; seed++ {
		net := wormhole.New(m, wormhole.DefaultConfig())
		net.SetFaults(fault.MustPlan(m, fault.Spec{DeadFrac: 0.06, Seed: seed}))
		_, err := Run(net, tab, ch, root, 1024, Config{Software: testSoft})
		if err == nil {
			continue
		}
		msg := err.Error()
		for _, want := range []string{"unreachable", "->", "worms in flight"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("seed %d: diagnostic lacks %q: %s", seed, want, msg)
			}
		}
		return
	}
	t.Fatal("no seed in [1,64) stranded the placement; partition coverage is vacuous")
}

// TestWatchdogNoProgress: with one silently-stuck channel on the tree's
// path, the run must fail after roughly the watchdog window with an error
// naming the symptom, a stuck worm, and the hottest blocked channel.
func TestWatchdogNoProgress(t *testing.T) {
	m := mesh.New2D(8, 8)
	addrs := []int{0, 63, 7, 56}
	ch, root := meshChain(m, addrs)
	tab := core.BinomialTable{Max: 4}

	// Stick a mid-path fabric channel on the root's route to node 63.
	path := wormhole.PathChannels(m, 0, 63)
	stuck := path[len(path)/2]

	net := wormhole.New(m, wormhole.DefaultConfig())
	net.SetFaults(stuckChannel{c: stuck})
	const window = 256
	_, err := Run(net, tab, ch, root, 1024, Config{Software: testSoft, NoProgressCycles: window})
	if err == nil {
		t.Fatal("run with a stuck channel completed")
	}
	msg := err.Error()
	for _, want := range []string{"no flit moved", "worms in flight", "hottest blocked channel"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("watchdog diagnostic lacks %q: %s", want, msg)
		}
	}
	// The report must point at fabric state, i.e. name at least one worm
	// blocked on a channel another worm holds, or waiting on the stuck
	// link — not merely restate the timeout.
	if !strings.Contains(msg, "worm") {
		t.Fatalf("watchdog diagnostic names no worm: %s", msg)
	}
}

// TestWatchdogDisabled: NoProgressCycles < 0 switches the no-progress
// watchdog off; the same stuck fabric then runs into MaxCycles instead,
// which still carries the deadlock report.
func TestWatchdogDisabled(t *testing.T) {
	m := mesh.New2D(8, 8)
	addrs := []int{0, 63, 7, 56}
	ch, root := meshChain(m, addrs)
	tab := core.BinomialTable{Max: 4}
	path := wormhole.PathChannels(m, 0, 63)

	net := wormhole.New(m, wormhole.DefaultConfig())
	net.SetFaults(stuckChannel{c: path[len(path)/2]})
	_, err := Run(net, tab, ch, root, 1024, Config{
		Software: testSoft, NoProgressCycles: -1, MaxCycles: 20000,
	})
	if err == nil {
		t.Fatal("run with a stuck channel completed")
	}
	if !strings.Contains(err.Error(), "not complete after 20000 cycles") {
		t.Fatalf("want the MaxCycles diagnostic, got: %v", err)
	}
	if !strings.Contains(err.Error(), "worms in flight") {
		t.Fatalf("MaxCycles diagnostic lacks the deadlock report: %v", err)
	}
}

// TestWatchdogConcurrent: the concurrent driver shares the watchdog — a
// stuck channel under one group must abort the whole batch with the same
// diagnostic shape.
func TestWatchdogConcurrent(t *testing.T) {
	m := mesh.New2D(8, 8)
	chA, rootA := meshChain(m, []int{0, 63, 7})
	chB, rootB := meshChain(m, []int{16, 47, 24})
	groups := []Group{
		{Tab: core.BinomialTable{Max: 3}, Chain: chA, Root: rootA, Bytes: 512},
		{Tab: core.BinomialTable{Max: 3}, Chain: chB, Root: rootB, Bytes: 512},
	}
	path := wormhole.PathChannels(m, 0, 63)

	net := wormhole.New(m, wormhole.DefaultConfig())
	net.SetFaults(stuckChannel{c: path[len(path)/2]})
	_, err := RunConcurrent(net, groups, Config{Software: testSoft, NoProgressCycles: 256})
	if err == nil {
		t.Fatal("concurrent batch with a stuck channel completed")
	}
	for _, want := range []string{"no flit moved", "hottest blocked channel"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("concurrent watchdog diagnostic lacks %q: %v", want, err)
		}
	}
}

// TestWatchdogQuietOnHealthyRuns: the watchdog must never misfire on a
// healthy multicast, even with the window forced down to its floor.
func TestWatchdogQuietOnHealthyRuns(t *testing.T) {
	m := mesh.New2D(8, 8)
	for seed := uint64(0); seed < 8; seed++ {
		ch, root := meshChain(m, placement(seed, 64, 16))
		net := wormhole.New(m, wormhole.DefaultConfig())
		_, err := Run(net, core.BinomialTable{Max: 16}, ch, root, 4096,
			Config{Software: testSoft, NoProgressCycles: 1})
		if err != nil {
			t.Fatalf("seed %d: watchdog misfired on a healthy run: %v", seed, err)
		}
	}
}

// TestDeadlockReportDeduplicatesConvoys: when a convoy of sends piles up
// behind one silent channel — a sequential tree keeps issuing from the
// root while the first worm is stuck — the watchdog report must collapse
// the identical waiters into one line with a count instead of one line
// per worm, so the diagnostic stays readable at scale.
func TestDeadlockReportDeduplicatesConvoys(t *testing.T) {
	m := mesh.New2D(8, 8)
	addrs := []int{0, 63, 62, 61, 60, 59, 58}
	ch, root := meshChain(m, addrs)
	tab := core.SequentialTable{Max: len(addrs)}

	// Stick the root's first fabric hop: the first send freezes there
	// holding the injection channel, and every later send queues behind it.
	path := wormhole.PathChannels(m, 0, 63)
	net := wormhole.New(m, wormhole.DefaultConfig())
	net.SetFaults(stuckChannel{c: path[1]})

	_, err := Run(net, tab, ch, root, 64, Config{Software: testSoft})
	if err == nil {
		t.Fatal("run with a stuck first hop completed")
	}
	msg := err.Error()
	if got := strings.Count(msg, "waiting to inject"); got != 1 {
		t.Fatalf("want one deduplicated waiting-to-inject line, got %d:\n%s", got, msg)
	}
	if !strings.Contains(msg, "more worms on this channel") {
		t.Fatalf("deduplicated line lacks the collapsed-worm count:\n%s", msg)
	}
	if !strings.Contains(msg, "hottest blocked channel") {
		t.Fatalf("report lost the hottest-channel summary:\n%s", msg)
	}
}
