package mcastsim_test

import (
	"strings"
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	. "repro/internal/mcastsim"
	"repro/internal/mesh"
	"repro/internal/wormhole"
)

func twoGroups(m *mesh.Mesh, k, bytes int, seeds [2]uint64) []Group {
	tab := core.NewOptTable(k, 441, 1400)
	gs := make([]Group, 2)
	// Draw disjoint placements: group 0 from even addresses, group 1
	// from odd, so validation never trips on overlap.
	for gi := range gs {
		base := placement(seeds[gi], m.NumNodes()/2, k)
		addrs := make([]int, k)
		for i, a := range base {
			addrs[i] = a*2 + gi
		}
		ch := chain.New(addrs, m.DimOrderLess)
		root, _ := ch.Index(addrs[0])
		gs[gi] = Group{Tab: tab, Chain: ch, Root: root, Bytes: bytes}
	}
	return gs
}

// TestConcurrentMatchesSoloWhenAlone: a single-group batch equals Run.
func TestConcurrentMatchesSolo(t *testing.T) {
	m := mesh.New2D(16, 16)
	tab := core.NewOptTable(16, 441, 1400)
	ch, root := meshChain(m, placement(5, 256, 16))
	solo, err := Run(wormhole.New(m, wormhole.DefaultConfig()), tab, ch, root, 2048, Config{Software: testSoft})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := RunConcurrent(wormhole.New(m, wormhole.DefaultConfig()),
		[]Group{{Tab: tab, Chain: ch, Root: root, Bytes: 2048}}, Config{Software: testSoft})
	if err != nil {
		t.Fatal(err)
	}
	if batch[0].Latency != solo.Latency || batch[0].BlockedCycles != solo.BlockedCycles {
		t.Fatalf("single-group batch %+v != solo %+v", batch[0].Result, solo)
	}
}

// TestConcurrentGroupsComplete: both groups deliver everywhere; worm
// counts per group are exact.
func TestConcurrentGroupsComplete(t *testing.T) {
	m := mesh.New2D(16, 16)
	gs := twoGroups(m, 16, 2048, [2]uint64{1, 2})
	res, err := RunConcurrent(wormhole.New(m, wormhole.DefaultConfig()), gs, Config{Software: testSoft})
	if err != nil {
		t.Fatal(err)
	}
	for gi, r := range res {
		if r.Worms != 15 {
			t.Fatalf("group %d: %d worms", gi, r.Worms)
		}
		for i, d := range r.Deliveries {
			if d < 0 {
				t.Fatalf("group %d position %d undelivered", gi, i)
			}
		}
	}
}

// TestConcurrentInterference: two contention-free multicasts, run
// together, do interfere — latency can only grow, and blocked cycles
// appear (the paper's guarantee is per-multicast).
func TestConcurrentInterference(t *testing.T) {
	m := mesh.New2D(16, 16)
	cfg := Config{Software: testSoft}
	var grew, blockedSeen bool
	for seed := uint64(0); seed < 8 && !(grew && blockedSeen); seed++ {
		gs := twoGroups(m, 24, 4096, [2]uint64{seed, seed + 100})
		var solo [2]int64
		for gi, g := range gs {
			r, err := Run(wormhole.New(m, wormhole.DefaultConfig()), g.Tab, g.Chain, g.Root, g.Bytes, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if r.BlockedCycles != 0 {
				t.Fatalf("group %d not contention-free alone", gi)
			}
			solo[gi] = r.Latency
		}
		batch, err := RunConcurrent(wormhole.New(m, wormhole.DefaultConfig()), gs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for gi, r := range batch {
			if r.Latency < solo[gi] {
				t.Fatalf("seed %d group %d got faster under interference: %d < %d", seed, gi, r.Latency, solo[gi])
			}
			if r.Latency > solo[gi] {
				grew = true
			}
			if r.BlockedCycles > 0 {
				blockedSeen = true
			}
		}
	}
	if !grew || !blockedSeen {
		t.Fatal("no interference observed across 8 seeds; cross-multicast contention is not being modelled")
	}
}

// TestConcurrentStaggeredStart: delaying one group shifts its deliveries
// but both still complete; latency is measured from the group's own
// start.
func TestConcurrentStaggeredStart(t *testing.T) {
	m := mesh.New2D(16, 16)
	gs := twoGroups(m, 12, 1024, [2]uint64{7, 8})
	gs[1].StartAt = 50000
	res, err := RunConcurrent(wormhole.New(m, wormhole.DefaultConfig()), gs, Config{Software: testSoft})
	if err != nil {
		t.Fatal(err)
	}
	if res[1].StartAt != 50000 {
		t.Fatal("StartAt not echoed")
	}
	// With a huge stagger the groups don't overlap: latencies match solo.
	for gi, g := range gs {
		solo, err := Run(wormhole.New(m, wormhole.DefaultConfig()), g.Tab, g.Chain, g.Root, g.Bytes, Config{Software: testSoft})
		if err != nil {
			t.Fatal(err)
		}
		if res[gi].Latency != solo.Latency {
			t.Fatalf("group %d staggered latency %d != solo %d", gi, res[gi].Latency, solo.Latency)
		}
	}
}

// TestConcurrentValidation: overlapping groups and bad arguments error.
func TestConcurrentValidation(t *testing.T) {
	m := mesh.New2D(8, 8)
	net := wormhole.New(m, wormhole.DefaultConfig())
	tab := core.NewOptTable(4, 1, 2)
	cfg := Config{Software: testSoft}
	ok := Group{Tab: tab, Chain: chain.Chain{0, 1}, Root: 0, Bytes: 8}
	cases := []struct {
		name   string
		groups []Group
		want   string
	}{
		{"empty", nil, "no groups"},
		{"overlap", []Group{ok, {Tab: tab, Chain: chain.Chain{1, 2}, Root: 0, Bytes: 8}}, "disjoint"},
		{"bad root", []Group{{Tab: tab, Chain: chain.Chain{0, 1}, Root: 9, Bytes: 8}}, "root"},
		{"negative start", []Group{{Tab: tab, Chain: chain.Chain{0, 1}, Root: 0, Bytes: 8, StartAt: -1}}, "negative"},
		{"out of fabric", []Group{{Tab: tab, Chain: chain.Chain{0, 999}, Root: 0, Bytes: 8}}, "outside"},
	}
	for _, c := range cases {
		_, err := RunConcurrent(net, c.groups, cfg)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

// TestConcurrentDeterministic: batches replay exactly.
func TestConcurrentDeterministic(t *testing.T) {
	m := mesh.New2D(16, 16)
	run := func() []int64 {
		gs := twoGroups(m, 20, 4096, [2]uint64{3, 4})
		res, err := RunConcurrent(wormhole.New(m, wormhole.DefaultConfig()), gs, Config{Software: testSoft})
		if err != nil {
			t.Fatal(err)
		}
		return []int64{res[0].Latency, res[1].Latency, res[0].BlockedCycles}
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("concurrent batches diverged")
		}
	}
}
