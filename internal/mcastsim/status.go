package mcastsim

// DestStatus classifies how one chain position fared in a reliable
// multicast (package recover). Plain Run either delivers every position
// or fails wholesale, so it has no use for the type; the recovery layer
// reports its per-destination outcomes in this vocabulary so drivers and
// experiments share one definition.
type DestStatus uint8

const (
	// StatusDelivered: received on the first attempt of its final
	// assignment, along the originally planned tree.
	StatusDelivered DestStatus = iota
	// StatusRetried: received, but only after at least one timeout-driven
	// retransmission of some send on its path.
	StatusRetried
	// StatusAdopted: received through a repaired tree — a replanned
	// subtree after its planned parent or path was given up, or an
	// orphan re-assigned to a new sender.
	StatusAdopted
	// StatusAbandoned: never received; no live sender could reach it.
	StatusAbandoned
)

// String returns the lowercase status name.
func (s DestStatus) String() string {
	switch s {
	case StatusDelivered:
		return "delivered"
	case StatusRetried:
		return "retried"
	case StatusAdopted:
		return "adopted"
	case StatusAbandoned:
		return "abandoned"
	}
	return "unknown"
}

// Overhead aggregates the message-cost counters of a reliable multicast:
// everything the recovery machinery sent beyond the Worms of a clean
// run. The total fabric traffic of a recovered run is Sends; the
// recovery premium over a fault-free execution is Retransmits +
// RepairSends + OrphanSends.
type Overhead struct {
	// Sends is every message handed to the fabric, including the initial
	// tree and all recovery traffic.
	Sends int64
	// Retransmits counts re-issues of a timed-out or frozen send to the
	// same destination.
	Retransmits int64
	// Cancelled counts worms withdrawn from the fabric (each retransmit
	// or give-up first cancels the outstanding worm, so delivery stays
	// at-most-once).
	Cancelled int64
	// RepairSends counts sends issued by replanned subtrees after a
	// member was given up (subtree adoption).
	RepairSends int64
	// OrphanSends counts direct deliveries to orphaned members
	// re-assigned to a different live sender.
	OrphanSends int64
	// Repairs counts give-up events: a (sender, destination) pair
	// declared unroutable after exhausting its retry budget, triggering
	// a replan.
	Repairs int64
}
