package mcastsim_test

import (
	"testing"

	"repro/internal/bfly"
	"repro/internal/bmin"
	"repro/internal/chain"
	"repro/internal/core"
	. "repro/internal/mcastsim"
	"repro/internal/mesh"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/torus"
	"repro/internal/wormhole"
)

// TestDeliveriesMatchAnalyticSchedule is the per-node cross-validation:
// for contention-free OPT-mesh runs, every node's simulated delivery time
// must track the analytic schedule's arrival time, node by node, within
// the accumulated per-hop distance spread. This is much stronger than
// comparing final latencies — it pins the entire delivery wavefront.
func TestDeliveriesMatchAnalyticSchedule(t *testing.T) {
	m := mesh.New2D(16, 16)
	cfgW := wormhole.DefaultConfig()
	cfgM := Config{Software: testSoft}
	const bytes = 2048
	const k = 16

	tend, err := Unicast(wormhole.New(m, cfgW), m.Addr(0, 0), m.Addr(5, 5), bytes, cfgM)
	if err != nil {
		t.Fatal(err)
	}
	thold := testSoft.Hold.At(bytes)
	tab := core.NewOptTable(k, thold, tend)

	for seed := uint64(400); seed < 406; seed++ {
		ch, root := meshChain(m, placement(seed, 256, k))
		res, err := Run(wormhole.New(m, cfgW), tab, ch, root, bytes, cfgM)
		if err != nil {
			t.Fatal(err)
		}
		if res.BlockedCycles != 0 {
			t.Fatalf("seed %d: not contention-free", seed)
		}
		s, err := plan.BuildSchedule(tab, ch, root, thold, tend)
		if err != nil {
			t.Fatal(err)
		}
		analytic := make([]int64, k)
		depth := make([]int, k)
		for _, e := range s.Entries {
			analytic[e.To] = e.Arrive
			depth[e.To] = depth[e.From] + 1
		}
		for i := 0; i < k; i++ {
			if i == root {
				if res.Deliveries[i] != 0 {
					t.Fatalf("seed %d: root delivered at %d", seed, res.Deliveries[i])
				}
				continue
			}
			// Per-hop spread: the calibration pair sits at distance 10;
			// each tree level can deviate by at most 20 hops of
			// (1+RouterDelay) from the nominal t_end.
			tol := int64(depth[i]) * 20 * (1 + cfgW.RouterDelay)
			diff := res.Deliveries[i] - analytic[i]
			if diff < 0 {
				diff = -diff
			}
			if diff > tol {
				t.Fatalf("seed %d node %d (depth %d): simulated %d vs analytic %d (tol %d)",
					seed, ch[i], depth[i], res.Deliveries[i], analytic[i], tol)
			}
		}
	}
}

// TestStormsDrainOnEveryTopology: randomized point-to-point storms on all
// five fabrics drain, quiesce, and conserve messages — the deadlock- and
// leak-freedom fuzz for the whole topology suite.
func TestStormsDrainOnEveryTopology(t *testing.T) {
	topos := map[string]wormhole.Topology{
		"mesh":      mesh.New2D(8, 8),
		"hypercube": mesh.NewHypercube(6),
		"torus":     torus.New2D(8, 8),
		"bmin":      bmin.New(64, bmin.AscentStraight),
		"bmin-adpt": bmin.New(64, bmin.AscentAdaptiveDest),
		"butterfly": bfly.New(64),
	}
	for name, topo := range topos {
		for seed := uint64(0); seed < 3; seed++ {
			r := sim.NewRNG(seed * 7779)
			n := wormhole.New(topo, wormhole.DefaultConfig())
			sent := 0
			for i := 0; i < 80; i++ {
				a, b := r.Intn(topo.NumNodes()), r.Intn(topo.NumNodes())
				if a == b {
					continue
				}
				n.Send(wormhole.NodeID(a), wormhole.NodeID(b), 64+r.Intn(3000), nil, nil)
				sent++
			}
			if _, err := n.RunUntilIdle(1 << 23); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if err := n.Quiesced(); err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if got := n.Stats().Worms; got != int64(sent) {
				t.Fatalf("%s seed %d: %d worms completed, sent %d", name, seed, got, sent)
			}
		}
	}
}

// TestMulticastOnEveryTopology: the runtime completes an OPT multicast
// on all five fabrics with their native orderings.
func TestMulticastOnEveryTopology(t *testing.T) {
	type platform struct {
		topo wormhole.Topology
		less func(a, b int) bool
	}
	me := mesh.New2D(8, 8)
	hc := mesh.NewHypercube(6)
	to := torus.New2D(8, 8)
	bm := bmin.New(64, bmin.AscentStraight)
	bf := bfly.New(64)
	platforms := map[string]platform{
		"mesh":      {me, me.DimOrderLess},
		"hypercube": {hc, hc.DimOrderLess},
		"torus":     {to, to.DimOrderLess},
		"bmin":      {bm, bm.LexLess},
		"butterfly": {bf, bf.LexLess},
	}
	tab := core.NewOptTable(16, 441, 1400)
	for name, p := range platforms {
		addrs := placement(31, 64, 16)
		ch := chain.New(addrs, p.less)
		root, _ := ch.Index(addrs[0])
		res, err := Run(wormhole.New(p.topo, wormhole.DefaultConfig()), tab, ch, root, 1024, Config{Software: testSoft})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Worms != 15 {
			t.Fatalf("%s: %d worms", name, res.Worms)
		}
	}
}
