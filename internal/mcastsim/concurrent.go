package mcastsim

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/wormhole"
)

// Group is one multicast of a concurrent batch: its own tree shape,
// chain, source, message size and release time.
type Group struct {
	Tab   core.SplitTable
	Chain chain.Chain
	Root  int
	Bytes int
	// StartAt delays the group's first send (cycles from batch start).
	StartAt int64
}

// GroupResult reports one group of a concurrent batch. Latency is
// measured from the group's own start time.
type GroupResult struct {
	Result
	// StartAt echoes the group's release time.
	StartAt int64
}

// RunConcurrent executes several multicasts on one fabric at the same
// time. Groups must cover pairwise-disjoint node sets (each node has one
// CPU timeline; disjointness keeps the software model exact), but their
// messages share the fabric — which is precisely the point: the paper's
// contention-freedom theorems hold within a single multicast, and this
// entry point measures how much concurrent collectives interfere.
func RunConcurrent(net *wormhole.Network, groups []Group, cfg Config) ([]GroupResult, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("mcastsim: no groups")
	}
	if err := net.Quiesced(); err != nil {
		return nil, fmt.Errorf("mcastsim: fabric not idle: %w", err)
	}
	seen := make(map[int]int)
	for gi, g := range groups {
		if err := g.Chain.Validate(); err != nil {
			return nil, fmt.Errorf("mcastsim: group %d: %w", gi, err)
		}
		if g.Root < 0 || g.Root >= len(g.Chain) {
			return nil, fmt.Errorf("mcastsim: group %d: root %d outside chain", gi, g.Root)
		}
		if len(g.Chain) > g.Tab.K() {
			return nil, fmt.Errorf("mcastsim: group %d: chain exceeds split table", gi)
		}
		if g.Bytes < 0 || g.StartAt < 0 {
			return nil, fmt.Errorf("mcastsim: group %d: negative size or start", gi)
		}
		for _, a := range g.Chain {
			if a < 0 || a >= net.Topology().NumNodes() {
				return nil, fmt.Errorf("mcastsim: group %d: address %d outside fabric", gi, a)
			}
			if prev, dup := seen[a]; dup {
				return nil, fmt.Errorf("mcastsim: node %d appears in groups %d and %d (groups must be disjoint)", a, prev, gi)
			}
			seen[a] = gi
		}
	}

	var events sim.EventQueue
	var planErr error
	t0 := net.Now()
	runners := make([]*runner, len(groups))
	results := make([]GroupResult, len(groups))
	for gi, g := range groups {
		r := &runner{
			net:    net,
			tab:    g.Tab,
			ch:     g.Chain,
			bytes:  g.Bytes,
			cfg:    cfg,
			events: &events,
			res:    Result{Deliveries: make([]int64, len(g.Chain))},
			t0:     t0 + g.StartAt,
		}
		for i := range r.res.Deliveries {
			r.res.Deliveries[i] = -1
		}
		r.onPlanErr = func(err error) {
			if planErr == nil {
				planErr = err
			}
		}
		runners[gi] = r
		results[gi].StartAt = g.StartAt
	}
	// Release every group at its own start time through the shared queue
	// so interleaving is purely time-driven.
	for gi, g := range groups {
		r := runners[gi]
		root, seg := g.Root, chain.Segment{L: 0, R: len(g.Chain) - 1}
		events.At(r.t0, func() { r.deliver(root, seg, r.t0) })
	}

	max := int64(0)
	for _, g := range groups {
		perMsg := int64(net.Config().Flits(g.Bytes+cfg.AddrBytes*len(g.Chain))) + int64(net.Topology().NumChannels())
		soft := cfg.Software.Send.At(g.Bytes) + cfg.Software.Recv.At(g.Bytes) + cfg.Software.Hold.At(g.Bytes)
		max += (perMsg+soft+1024)*int64(len(g.Chain)+1)*4 + g.StartAt
	}
	if cfg.MaxCycles > 0 {
		max = cfg.MaxCycles
	}
	max += 1 << 20

	startStats := net.Stats()
	deadline := t0 + max
	wd := NewWatchdog(net, cfg)
	for events.Len() > 0 || net.Active() > 0 {
		if net.Active() == 0 {
			net.AdvanceTo(events.NextTime())
			wd.Idled()
		}
		events.RunDue(net.Now())
		if planErr != nil {
			return nil, planErr
		}
		if net.Active() == 0 && events.Len() == 0 {
			break
		}
		if net.Active() > 0 {
			// As in Run: fast-forward stalls, but never past the next
			// software event or the deadline check (kept in the future —
			// AdvanceTo may have leapt past a tiny deadline already).
			limit := deadline + 1
			if limit <= net.Now() {
				limit = net.Now() + 1
			}
			if events.Len() > 0 && events.NextTime() < limit {
				limit = events.NextTime()
			}
			net.StepUntil(limit)
			if err := wd.Check(); err != nil {
				return nil, err
			}
			if net.Now() > deadline {
				return nil, fmt.Errorf("mcastsim: concurrent batch not complete after %d cycles; %s",
					max, net.DeadlockReport(8))
			}
		}
	}
	if err := net.Quiesced(); err != nil {
		return nil, fmt.Errorf("mcastsim: fabric did not quiesce: %w", err)
	}

	end := net.Stats()
	totalWorms := end.Worms - startStats.Worms
	var expect int64
	for gi, r := range runners {
		for i, d := range r.res.Deliveries {
			if d < 0 {
				return nil, fmt.Errorf("mcastsim: group %d position %d never delivered", gi, i)
			}
		}
		results[gi].Result = r.res
		expect += int64(len(groups[gi].Chain) - 1)
	}
	if totalWorms != expect {
		return nil, fmt.Errorf("mcastsim: %d worms completed, want %d", totalWorms, expect)
	}
	// Per-group blocked cycles are not separable from fabric stats; report
	// the aggregate on every group and the batch split via worm counts.
	for gi := range results {
		results[gi].BlockedCycles = end.BlockedCycles - startStats.BlockedCycles
		results[gi].InjectWaitCycles = end.InjectWaitCycles - startStats.InjectWaitCycles
		results[gi].Cycles = end.Cycles - startStats.Cycles
		results[gi].Worms = int64(len(groups[gi].Chain) - 1)
	}
	return results, nil
}
