package sim

import (
	"math"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGKnownStream(t *testing.T) {
	// Pin the SplitMix64 stream so recorded experiment outputs can never
	// silently drift: these are the reference values for seed 0.
	r := NewRNG(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds produced identical first values")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for n := 1; n < 40; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnRoughlyUniform(t *testing.T) {
	r := NewRNG(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	for v, c := range counts {
		if c < trials/n*8/10 || c > trials/n*12/10 {
			t.Fatalf("value %d drawn %d times out of %d (expected ~%d)", v, c, trials, trials/n)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	for n := 0; n < 30; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v invalid", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinctInRange(t *testing.T) {
	r := NewRNG(11)
	f := func(nr, kr uint8) bool {
		n := int(nr)%100 + 1
		k := int(kr) % (n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleFullRangeIsPermutation(t *testing.T) {
	r := NewRNG(13)
	s := r.Sample(20, 20)
	sorted := append([]int(nil), s...)
	sort.Ints(sorted)
	for i, v := range sorted {
		if v != i {
			t.Fatalf("Sample(20,20) = %v is not a permutation", s)
		}
	}
}

func TestSampleUniformCoverage(t *testing.T) {
	// Every element should be selected with probability k/n.
	r := NewRNG(17)
	const n, k, trials = 16, 4, 40000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range r.Sample(n, k) {
			counts[v]++
		}
	}
	expect := trials * k / n
	for v, c := range counts {
		if c < expect*85/100 || c > expect*115/100 {
			t.Fatalf("element %d selected %d times, expected ~%d", v, c, expect)
		}
	}
}

func TestSplitStreamsDiffer(t *testing.T) {
	r := NewRNG(21)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split streams start identically")
	}
}

func TestEventQueueOrdersByTime(t *testing.T) {
	var q EventQueue
	var got []int
	q.At(30, func() { got = append(got, 30) })
	q.At(10, func() { got = append(got, 10) })
	q.At(20, func() { got = append(got, 20) })
	q.RunDue(100)
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("order = %v", got)
	}
}

func TestEventQueueFIFOAtSameTime(t *testing.T) {
	var q EventQueue
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		q.At(5, func() { got = append(got, i) })
	}
	q.RunDue(5)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEventQueueRunDueStopsAtNow(t *testing.T) {
	var q EventQueue
	ran := 0
	q.At(5, func() { ran++ })
	q.At(6, func() { ran++ })
	if n := q.RunDue(5); n != 1 || ran != 1 {
		t.Fatalf("RunDue(5) ran %d events", ran)
	}
	if q.Len() != 1 || q.NextTime() != 6 {
		t.Fatalf("queue state: len=%d", q.Len())
	}
	q.RunDue(6)
	if ran != 2 || q.Len() != 0 {
		t.Fatalf("final state: ran=%d len=%d", ran, q.Len())
	}
}

func TestEventQueueCallbackCanSchedule(t *testing.T) {
	var q EventQueue
	var got []int
	q.At(1, func() {
		got = append(got, 1)
		q.At(1, func() { got = append(got, 2) }) // same-time chained event
		q.At(9, func() { got = append(got, 9) })
	})
	q.RunDue(1)
	if len(got) != 2 || got[1] != 2 {
		t.Fatalf("chained same-time event not run: %v", got)
	}
	q.RunDue(9)
	if len(got) != 3 || got[2] != 9 {
		t.Fatalf("future event lost: %v", got)
	}
}

func TestEventQueueNextTimePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NextTime on empty queue did not panic")
		}
	}()
	var q EventQueue
	q.NextTime()
}

func TestEventQueueRandomizedOrdering(t *testing.T) {
	r := NewRNG(33)
	var q EventQueue
	var got []int64
	var want []int64
	for i := 0; i < 500; i++ {
		at := int64(r.Intn(100))
		want = append(want, at)
		q.At(at, func() { got = append(got, at) })
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	q.RunDue(1000)
	if len(got) != len(want) {
		t.Fatalf("ran %d of %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d at %d, want %d", i, got[i], want[i])
		}
	}
}

func TestStatsMoments(t *testing.T) {
	var s Stats
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 || s.Mean() != 5 {
		t.Fatalf("n=%d mean=%v", s.N(), s.Mean())
	}
	if math.Abs(s.StdDev()-2.138089935) > 1e-6 {
		t.Fatalf("stddev = %v", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min=%v max=%v", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Fatalf("CI95 = %v", s.CI95())
	}
}

func TestStatsEmptyAndSingle(t *testing.T) {
	var s Stats
	if s.Mean() != 0 || s.Var() != 0 || s.StdErr() != 0 {
		t.Fatal("empty stats not all zero")
	}
	s.Add(42)
	if s.Mean() != 42 || s.Var() != 0 || s.Min() != 42 || s.Max() != 42 {
		t.Fatalf("single sample: %v", s.String())
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 {
		t.Fatal("Median mutated input")
	}
}

func TestForEachVisitsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 137
		var visited [n]int32
		ForEach(n, workers, func(i int) { atomic.AddInt32(&visited[i], 1) })
		for i, v := range visited {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
	ForEach(0, 4, func(int) { t.Fatal("fn called for n=0") })
}

func TestForEachParallelResultsDeterministic(t *testing.T) {
	run := func() [64]uint64 {
		var out [64]uint64
		ForEach(64, 4, func(i int) {
			r := NewRNG(uint64(i))
			out[i] = r.Uint64()
		})
		return out
	}
	if run() != run() {
		t.Fatal("parallel runs with index-local state diverged")
	}
}
