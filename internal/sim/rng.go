// Package sim provides the deterministic substrate shared by the
// simulators and the experiment harness: a fast seedable PRNG, an event
// queue, online statistics, and a bounded-parallelism runner.
//
// Everything here is reproducible: given the same seed, every helper
// produces the same sequence on every platform, which is what makes the
// experiment tables byte-for-byte stable.
package sim

import (
	"math"
	"math/bits"
)

// RNG is a SplitMix64 pseudo-random generator. It is tiny, fast, has a
// full 2^64 period, and unlike math/rand its stream is stable across Go
// releases, so recorded experiment outputs never drift.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with the given value. Distinct seeds
// give statistically independent streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method: unbiased and fast.
	bound := uint64(n)
	threshold := -bound % bound // (2^64 - bound) mod bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with mean 1, via
// inversion of the uniform stream: -ln(1-U). Since Float64 is in [0, 1),
// the argument to log stays in (0, 1] and the result is always finite
// and non-negative — arrival processes scale it by the desired mean
// inter-arrival gap.
func (r *RNG) Exp() float64 {
	return -math.Log(1 - r.Float64())
}

// Perm returns a random permutation of [0, n), Fisher-Yates shuffled.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes the slice in place.
func (r *RNG) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("sim: Sample k out of range")
	}
	// Partial Fisher-Yates over a dense index map: O(k) memory for the
	// touched prefix via a sparse map when n is large.
	touched := make(map[int]int, 2*k)
	get := func(i int) int {
		if v, ok := touched[i]; ok {
			return v
		}
		return i
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		out[i] = get(j)
		touched[j] = get(i)
	}
	return out
}

// Split returns a new generator whose stream is independent of the
// parent's future output; used to give each parallel experiment its own
// reproducible stream.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa0761d6478bd642f)
}
