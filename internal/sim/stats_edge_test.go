package sim

import (
	"math"
	"testing"
)

// TestStatsSmallSamples pins the degenerate-sample contract the fault
// sweeps rely on: cells can end with zero or one surviving run (the rest
// unreachable or watchdog-aborted), and every spread estimator must then
// report exactly 0 — never NaN, which would poison table rendering and
// any downstream arithmetic.
func TestStatsSmallSamples(t *testing.T) {
	check := func(name string, s *Stats) {
		t.Helper()
		for label, v := range map[string]float64{
			"Var": s.Var(), "StdDev": s.StdDev(), "StdErr": s.StdErr(), "CI95": s.CI95(),
		} {
			if math.IsNaN(v) {
				t.Errorf("%s: %s is NaN", name, label)
			}
			if v != 0 {
				t.Errorf("%s: %s = %g, want 0", name, label, v)
			}
		}
	}

	var empty Stats
	check("n=0", &empty)
	if empty.N() != 0 || empty.Mean() != 0 || empty.Min() != 0 || empty.Max() != 0 {
		t.Errorf("empty Stats not all-zero: %s", &empty)
	}

	var one Stats
	one.Add(42)
	check("n=1", &one)
	if one.N() != 1 || one.Mean() != 42 || one.Min() != 42 || one.Max() != 42 {
		t.Errorf("single-sample Stats wrong: %s", &one)
	}

	// Two equal samples: spread is genuinely zero, still no NaN.
	var flat Stats
	flat.Add(7)
	flat.Add(7)
	check("n=2 equal", &flat)

	// From n=2 on, the estimators must become positive for spread data.
	var two Stats
	two.Add(1)
	two.Add(3)
	if two.Var() != 2 {
		t.Errorf("Var of {1,3} = %g, want 2", two.Var())
	}
	if two.StdErr() <= 0 || two.CI95() <= 0 {
		t.Errorf("spread estimators not positive at n=2: stderr=%g ci=%g", two.StdErr(), two.CI95())
	}
}

// TestMedianEdgeCases: the empty slice reports 0 (not a panic or NaN),
// and the input is never reordered.
func TestMedianEdgeCases(t *testing.T) {
	if m := Median(nil); m != 0 {
		t.Errorf("Median(nil) = %g, want 0", m)
	}
	if m := Median([]float64{}); m != 0 {
		t.Errorf("Median(empty) = %g, want 0", m)
	}
	if m := Median([]float64{5}); m != 5 {
		t.Errorf("Median({5}) = %g, want 5", m)
	}
	xs := []float64{3, 1, 2}
	if m := Median(xs); m != 2 {
		t.Errorf("Median({3,1,2}) = %g, want 2", m)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median reordered its input: %v", xs)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median = %g, want 2.5", m)
	}
}
