package sim

import "sync"

// Pool is a persistent barrier-synchronized worker pool for
// domain-parallel stepping: p-1 goroutines plus the caller each run
// fn(d) for one fixed domain index per Run call, and Run returns only
// after every domain finished. Unlike ForEach — which hands dynamic
// work items to whichever worker is free — Pool pins domain d to the
// same invocation slot every round, so callers can keep per-domain
// state without synchronization, and a Run costs only channel
// operations (no allocation, no goroutine churn), which matters when it
// is called once per simulated cycle.
//
// Run and Close must be called from a single owning goroutine; fn runs
// concurrently for distinct d and must only touch domain-private or
// read-only state. Close joins the workers (waitleak's contract: the
// pool owns its goroutines and observes their exit).
type Pool struct {
	fn     func(d int)
	kick   []chan struct{} // per-worker start signal; index 0 unused
	done   chan struct{}
	stop   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

// NewPool starts the workers for domains 1..p-1; domain 0 runs on the
// goroutine calling Run. p must be at least 1; a pool with p == 1 has
// no workers and Run simply calls fn(0).
func NewPool(p int, fn func(d int)) *Pool {
	if p < 1 {
		panic("sim: NewPool with p < 1")
	}
	l := &Pool{
		fn:   fn,
		kick: make([]chan struct{}, p),
		done: make(chan struct{}, p),
		stop: make(chan struct{}),
	}
	for d := 1; d < p; d++ {
		ch := make(chan struct{}, 1)
		l.kick[d] = ch
		l.wg.Add(1)
		go func(d int, ch chan struct{}) {
			defer l.wg.Done()
			for {
				select {
				case <-l.stop:
					return
				case <-ch:
					l.fn(d)
					l.done <- struct{}{}
				}
			}
		}(d, ch)
	}
	return l
}

// Run executes fn(d) for every domain concurrently and returns when all
// have finished (the per-cycle barrier). Allocation-free.
//
//lint:hotpath
func (l *Pool) Run() {
	for d := 1; d < len(l.kick); d++ {
		l.kick[d] <- struct{}{}
	}
	l.fn(0)
	for d := 1; d < len(l.kick); d++ {
		<-l.done
	}
}

// Close stops and joins the workers. Idempotent; Run must not be
// called after Close.
func (l *Pool) Close() {
	if l.closed {
		return
	}
	l.closed = true
	close(l.stop)
	l.wg.Wait()
}
