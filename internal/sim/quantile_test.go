package sim

import (
	"math"
	"sort"
	"testing"
)

// TestPercentileExactSmallSamples pins the nearest-rank estimator
// against a hand-sorted reference on small samples: the p-quantile is
// the element at rank ceil(p*n), 1-indexed in sorted order.
func TestPercentileExactSmallSamples(t *testing.T) {
	xs := []float64{9, 1, 7, 3, 5} // sorted: 1 3 5 7 9
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1},     // rank floor clamps to the minimum
		{0.2, 1},   // ceil(1.0) = 1
		{0.21, 3},  // ceil(1.05) = 2
		{0.5, 5},   // ceil(2.5) = 3
		{0.8, 7},   // ceil(4.0) = 4
		{0.99, 9},  // ceil(4.95) = 5
		{0.999, 9}, // p999 of n=5 is the max
		{1, 9},
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); got != tc.want {
			t.Errorf("Percentile(%v, %g) = %g, want %g", xs, tc.p, got, tc.want)
		}
	}
	if xs[0] != 9 || xs[4] != 5 {
		t.Errorf("Percentile reordered its input: %v", xs)
	}
}

// TestPercentileAgainstSortedReference: on a larger seeded sample every
// quantile must equal the directly indexed element of the sorted copy.
func TestPercentileAgainstSortedReference(t *testing.T) {
	rng := NewRNG(17)
	xs := make([]float64, 733)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999} {
		rank := int(math.Ceil(p * float64(len(xs))))
		if rank < 1 {
			rank = 1
		}
		if got, want := Percentile(xs, p), sorted[rank-1]; got != want {
			t.Errorf("p=%g: got %g, want sorted[%d]=%g", p, got, rank-1, want)
		}
	}
}

// TestPercentileSmallSampleTails: the edge the traffic metrics rely on —
// p999 with far fewer than 1000 samples must degrade to the maximum,
// never panic and never return NaN; the empty sample reports 0.
func TestPercentileSmallSampleTails(t *testing.T) {
	for n := 0; n <= 12; n++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i + 1)
		}
		got := Percentile(xs, 0.999)
		if math.IsNaN(got) {
			t.Fatalf("p999 of n=%d is NaN", n)
		}
		want := float64(n) // the max, or 0 when empty
		if got != want {
			t.Errorf("p999 of n=%d = %g, want %g", n, got, want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %g, want 0", got)
	}
}

func TestPercentileRejectsBadP(t *testing.T) {
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(_, %g) did not panic", p)
				}
			}()
			Percentile([]float64{1}, p)
		}()
	}
}

// TestExpDistribution: the unit-exponential draw has mean and standard
// deviation 1 within sampling tolerance, and is always finite and
// non-negative (Float64's [0,1) range keeps log away from 0).
func TestExpDistribution(t *testing.T) {
	rng := NewRNG(23)
	var s Stats
	for i := 0; i < 200000; i++ {
		x := rng.Exp()
		if x < 0 || math.IsInf(x, 0) || math.IsNaN(x) {
			t.Fatalf("draw %d: Exp() = %g", i, x)
		}
		s.Add(x)
	}
	if math.Abs(s.Mean()-1) > 0.01 {
		t.Errorf("Exp mean = %g, want 1 +- 0.01", s.Mean())
	}
	if math.Abs(s.StdDev()-1) > 0.02 {
		t.Errorf("Exp stddev = %g, want 1 +- 0.02", s.StdDev())
	}
}

// TestTimeWeightedMean: step-function integration over a window, with
// the last value extended to the query point.
func TestTimeWeightedMean(t *testing.T) {
	var w TimeWeighted
	if w.Started() {
		t.Fatal("zero TimeWeighted claims to be started")
	}
	if got := w.Mean(100); got != 0 {
		t.Errorf("Mean before any Set = %g, want 0", got)
	}
	w.Set(10, 2) // value 2 on [10, 30)
	w.Set(30, 4) // value 4 on [30, 50]
	if got, want := w.Mean(50), (2.0*20+4.0*20)/40; got != want {
		t.Errorf("Mean(50) = %g, want %g", got, want)
	}
	// Zero-length and inverted windows are 0, not NaN.
	if got := w.Mean(10); got != 0 {
		t.Errorf("Mean at window start = %g, want 0", got)
	}
	w.Set(50, 0) // drop to idle; extending past the last Set adds nothing
	if got, want := w.Mean(90), (2.0*20+4.0*20)/80; got != want {
		t.Errorf("Mean(90) = %g, want %g", got, want)
	}
}
