package sim

import (
	"sync/atomic"
	"testing"
)

// perIndex is a nontrivial index-local computation: each index derives
// its own RNG stream and folds a few draws, so any cross-index
// interference or double-visit shows up as a value mismatch, not just
// a race report.
func perIndex(i int) float64 {
	r := NewRNG(uint64(i)*0x9e37 + 1)
	v := 0.0
	for k := 0; k < 8; k++ {
		v += r.Float64()
	}
	return v
}

// TestForEachWorkerCountInvariance is the index-local-state contract
// from ForEach's doc comment as a property: the result vector must be
// bit-for-bit identical no matter how many workers split the range.
func TestForEachWorkerCountInvariance(t *testing.T) {
	const n = 257 // odd, not a multiple of any worker count below
	serial := make([]float64, n)
	ForEach(n, 1, func(i int) { serial[i] = perIndex(i) })

	for _, workers := range []int{2, 3, 8, 16} {
		got := make([]float64, n)
		ForEach(n, workers, func(i int) { got[i] = perIndex(i) })
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: index %d = %v, want %v (serial)", workers, i, got[i], serial[i])
			}
		}
	}
}

// TestForEachMoreWorkersThanItems pins the clamp: asking for far more
// workers than items must still visit every index exactly once and
// terminate (run under -race in CI).
func TestForEachMoreWorkersThanItems(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7} {
		var visits [8]int32
		ForEach(n, 64, func(i int) { atomic.AddInt32(&visits[i], 1) })
		for i := 0; i < n; i++ {
			if visits[i] != 1 {
				t.Fatalf("n=%d workers=64: index %d visited %d times", n, i, visits[i])
			}
		}
		for i := n; i < len(visits); i++ {
			if visits[i] != 0 {
				t.Fatalf("n=%d workers=64: out-of-range index %d visited", n, i)
			}
		}
	}
}

// TestForEachDegenerateRanges pins n=0 and negative n: fn must never
// run, and the call must return rather than hang on an empty channel.
func TestForEachDegenerateRanges(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		called := int32(0)
		ForEach(n, 8, func(i int) { atomic.AddInt32(&called, 1) })
		if called != 0 {
			t.Fatalf("n=%d: fn called %d times", n, called)
		}
	}
}

// TestForEachDefaultWorkers exercises the workers<=0 path, which clamps
// to GOMAXPROCS and must preserve the same exactly-once guarantee.
func TestForEachDefaultWorkers(t *testing.T) {
	const n = 100
	var visits [n]int32
	ForEach(n, 0, func(i int) { atomic.AddInt32(&visits[i], 1) })
	ForEach(n, -3, func(i int) { atomic.AddInt32(&visits[i], 1) })
	for i, v := range visits {
		if v != 2 {
			t.Fatalf("index %d visited %d times across two runs, want 2", i, v)
		}
	}
}
