package sim

import (
	"fmt"
	"math"
	"sort"
)

// Stats accumulates summary statistics online (Welford's algorithm), so
// experiment runners never need to retain raw samples unless they ask to.
type Stats struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add records one sample.
func (s *Stats) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the sample count.
func (s *Stats) N() int { return s.n }

// Mean returns the sample mean, or 0 with no samples.
func (s *Stats) Mean() float64 { return s.mean }

// Min returns the smallest sample, or 0 with no samples.
func (s *Stats) Min() float64 { return s.min }

// Max returns the largest sample, or 0 with no samples.
func (s *Stats) Max() float64 { return s.max }

// Var returns the unbiased sample variance.
func (s *Stats) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Stats) StdDev() float64 { return math.Sqrt(s.Var()) }

// StdErr returns the standard error of the mean.
func (s *Stats) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval around the mean. The experiments use 16 repetitions, for which
// the normal approximation is what the paper (implicitly) uses too.
func (s *Stats) CI95() float64 { return 1.96 * s.StdErr() }

func (s *Stats) String() string {
	return fmt.Sprintf("n=%d mean=%.1f sd=%.1f min=%.0f max=%.0f", s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Percentile returns the p-quantile (0 <= p <= 1) of a sample slice by
// the nearest-rank method on a sorted copy: the smallest sample x such
// that at least ceil(p*n) samples are <= x. The slice is not modified.
// The estimator is exact — no interpolation — so tails degrade
// gracefully on small samples: p999 of n < 1000 samples is simply the
// maximum, never NaN and never a panic (the Median small-sample rule,
// extended to arbitrary quantiles). With no samples it returns 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic("sim: Percentile p outside [0, 1]")
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	rank := int(math.Ceil(p * float64(len(c))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(c) {
		rank = len(c)
	}
	return c[rank-1]
}

// TimeWeighted accumulates the time-weighted mean of a right-continuous
// step function — the estimator for occupancy-style metrics ("average
// requests in service") over a measurement window. Set records the
// function's new value at time t (charging the previous value for the
// elapsed interval); the first Set opens the window.
type TimeWeighted struct {
	t0, last int64
	v        float64
	integral float64
	started  bool
}

// Started reports whether the window has been opened by a first Set.
func (w *TimeWeighted) Started() bool { return w.started }

// Set records that the step function takes value v from time t onward.
// Calls must not go backwards in time.
func (w *TimeWeighted) Set(t int64, v float64) {
	if !w.started {
		w.t0, w.started = t, true
	} else {
		w.integral += w.v * float64(t-w.last)
	}
	w.last, w.v = t, v
}

// Mean returns the time-weighted mean over [start, end], extending the
// last value to end. It returns 0 on an empty or zero-length window.
func (w *TimeWeighted) Mean(end int64) float64 {
	if !w.started || end <= w.t0 {
		return 0
	}
	integral := w.integral
	if end > w.last {
		integral += w.v * float64(end-w.last)
	}
	return integral / float64(end-w.t0)
}

// Median returns the median of a sample slice (the slice is not modified).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	m := len(c) / 2
	if len(c)%2 == 1 {
		return c[m]
	}
	return (c[m-1] + c[m]) / 2
}
