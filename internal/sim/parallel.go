package sim

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (GOMAXPROCS when workers <= 0). Each index is processed exactly once;
// fn must write only to index-local state so the overall result stays
// deterministic regardless of scheduling. It is the harness used to fan
// the paper's 16 independent placements per data point across cores.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
