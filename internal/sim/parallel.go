package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (GOMAXPROCS when workers <= 0). Each index is processed exactly once;
// fn must write only to index-local state so the overall result stays
// deterministic regardless of scheduling. It is the harness used to fan
// the paper's 16 independent placements per data point across cores.
func ForEach(n, workers int, fn func(i int)) {
	ForEachProgress(n, workers, fn, nil)
}

// ForEachProgress is ForEach with a completion hook: after each index
// finishes, done is called with the running count of completed indices
// (1..n). done may be invoked from any worker goroutine, so it must be
// safe for concurrent use; it exists for progress/ETA reporting and must
// not influence results — the experiment engine feeds it a stderr
// ticker, never a table.
func ForEachProgress(n, workers int, fn func(i int), done func(completed int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
			if done != nil {
				done(i + 1)
			}
		}
		return
	}
	var wg sync.WaitGroup
	var completed atomic.Int64
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
				if done != nil {
					done(int(completed.Add(1)))
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
