package sim

// EventQueue is a deterministic time-ordered queue of callbacks. Events
// scheduled for the same time fire in scheduling order (FIFO), which keeps
// simulations reproducible regardless of heap internals.
type EventQueue struct {
	items []event
	seq   uint64
}

type event struct {
	at  int64
	seq uint64
	fn  func()
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.items) }

// At schedules fn to run at the given time. Scheduling in the past is the
// caller's bug; the queue still delivers it at the head.
func (q *EventQueue) At(t int64, fn func()) {
	q.seq++
	q.items = append(q.items, event{at: t, seq: q.seq, fn: fn})
	q.up(len(q.items) - 1)
}

// NextTime returns the time of the earliest pending event. It panics if
// the queue is empty; check Len first.
func (q *EventQueue) NextTime() int64 {
	if len(q.items) == 0 {
		panic("sim: NextTime on empty EventQueue")
	}
	return q.items[0].at
}

// RunDue pops and runs every event with time <= now, in time order. It
// returns the number of events run. Callbacks may schedule further events,
// including at <= now; those fire in the same call.
func (q *EventQueue) RunDue(now int64) int {
	n := 0
	for len(q.items) > 0 && q.items[0].at <= now {
		e := q.pop()
		e.fn()
		n++
	}
	return n
}

func (q *EventQueue) pop() event {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return top
}

func (q *EventQueue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *EventQueue) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			return
		}
		q.items[i], q.items[p] = q.items[p], q.items[i]
		i = p
	}
}

func (q *EventQueue) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && q.less(l, m) {
			m = l
		}
		if r < n && q.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		q.items[i], q.items[m] = q.items[m], q.items[i]
		i = m
	}
}
