package trace_test

import (
	"strings"
	"testing"

	"repro/internal/mesh"
	. "repro/internal/trace"
	"repro/internal/wormhole"
)

func runWithObserver(t *testing.T, obs wormhole.Observer, sends [][2]int, bytes int) *wormhole.Network {
	t.Helper()
	m := mesh.New2D(8, 8)
	n := wormhole.New(m, wormhole.DefaultConfig())
	n.SetObserver(obs)
	for _, s := range sends {
		n.Send(wormhole.NodeID(s[0]), wormhole.NodeID(s[1]), bytes, nil, nil)
	}
	if _, err := n.RunUntilIdle(1 << 22); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestChannelUsageAccounting: busy time and acquire counts reflect one
// uncontended worm.
func TestChannelUsageAccounting(t *testing.T) {
	m := mesh.New2D(8, 8)
	u := NewChannelUsage(m)
	n := wormhole.New(m, wormhole.DefaultConfig())
	n.SetObserver(u)
	w := n.Send(0, 7, 800, nil, nil)
	if _, err := n.RunUntilIdle(1 << 20); err != nil {
		t.Fatal(err)
	}
	for _, c := range w.Path() {
		if u.Acquires(c) != 1 {
			t.Fatalf("channel %s acquired %d times", m.DescribeChannel(c), u.Acquires(c))
		}
		if u.BusyCycles(c) <= 0 {
			t.Fatalf("channel %s has zero busy time", m.DescribeChannel(c))
		}
		if u.BlockedOn(c) != 0 {
			t.Fatalf("uncontended channel %s reports blocking", m.DescribeChannel(c))
		}
	}
	// A channel off the path is untouched.
	off := m.LinkChannel(m.Addr(0, 7), 0, 1)
	if u.Acquires(off) != 0 || u.BusyCycles(off) != 0 {
		t.Fatal("off-path channel has activity")
	}
}

// TestChannelUsageHottest orders by busy time and Report renders it.
func TestChannelUsageHottest(t *testing.T) {
	m := mesh.New2D(8, 8)
	u := NewChannelUsage(m)
	runUsage := func() {
		n := wormhole.New(m, wormhole.DefaultConfig())
		n.SetObserver(u)
		n.Send(0, 7, 4000, nil, nil) // long worm across row 0
		n.Send(8, 15, 400, nil, nil) // short worm across row 1
		if _, err := n.RunUntilIdle(1 << 22); err != nil {
			t.Fatal(err)
		}
	}
	runUsage()
	hot := u.Hottest(3)
	if u.BusyCycles(hot[0]) < u.BusyCycles(hot[1]) || u.BusyCycles(hot[1]) < u.BusyCycles(hot[2]) {
		t.Fatal("Hottest not sorted by busy time")
	}
	rep := u.Report(5)
	if !strings.Contains(rep, "busy") || len(strings.Split(rep, "\n")) < 3 {
		t.Fatalf("report too small:\n%s", rep)
	}
}

// TestTimelineSpans: spans cover each message with sane bounds and the
// Gantt renderer marks blocked messages.
func TestTimelineSpans(t *testing.T) {
	tl := NewTimeline()
	// Two overlapping worms on the same row: the second blocks.
	runWithObserver(t, tl, [][2]int{{0, 7}, {2, 6}}, 2000)
	if len(tl.Spans) != 2 {
		t.Fatalf("%d spans", len(tl.Spans))
	}
	var blockedSeen bool
	for _, s := range tl.Spans {
		if s.Start >= s.End {
			t.Fatalf("span %+v inverted", s)
		}
		if s.BlockedCycles > 0 {
			blockedSeen = true
		}
	}
	if !blockedSeen {
		t.Fatal("expected one blocked span on the shared row")
	}
	g := tl.Gantt(40)
	if !strings.Contains(g, "=") || !strings.Contains(g, "!") {
		t.Fatalf("gantt missing bars or block marker:\n%s", g)
	}
}

func TestTimelineEmptyGantt(t *testing.T) {
	if g := NewTimeline().Gantt(40); !strings.Contains(g, "no messages") {
		t.Fatalf("empty gantt: %q", g)
	}
}

// TestBlockLogRecordsHolder: blocked events name both worms and the
// channel; the cap drops excess events but counts them.
func TestBlockLogRecordsHolder(t *testing.T) {
	m := mesh.New2D(8, 8)
	l := NewBlockLog(m, 5)
	n := wormhole.New(m, wormhole.DefaultConfig())
	n.SetObserver(l)
	w1 := n.Send(0, 7, 4000, nil, nil)
	w2 := n.Send(1, 6, 4000, nil, nil)
	if _, err := n.RunUntilIdle(1 << 22); err != nil {
		t.Fatal(err)
	}
	if len(l.Events) == 0 {
		t.Fatal("no block events recorded")
	}
	if len(l.Events) > 5 {
		t.Fatalf("cap not enforced: %d events", len(l.Events))
	}
	if w1.BlockedCycles+w2.BlockedCycles > 5 && l.Dropped == 0 {
		t.Fatal("expected dropped events beyond the cap")
	}
	e := l.Events[0]
	if e.Waiter == e.Holder {
		t.Fatal("waiter == holder")
	}
	if !strings.Contains(l.String(), "blocked on") {
		t.Fatal("String missing narrative")
	}
}

// TestMultiFansOut: both observers see the same events.
func TestMultiFansOut(t *testing.T) {
	m := mesh.New2D(8, 8)
	u1, u2 := NewChannelUsage(m), NewChannelUsage(m)
	n := wormhole.New(m, wormhole.DefaultConfig())
	n.SetObserver(Multi{u1, u2})
	w := n.Send(0, 63, 500, nil, nil)
	if _, err := n.RunUntilIdle(1 << 20); err != nil {
		t.Fatal(err)
	}
	for _, c := range w.Path() {
		if u1.BusyCycles(c) != u2.BusyCycles(c) {
			t.Fatal("observers diverged")
		}
	}
}

// TestMeshHeatmap renders a grid with hot cells on the traffic path.
func TestMeshHeatmap(t *testing.T) {
	m := mesh.New2D(8, 8)
	u := NewChannelUsage(m)
	n := wormhole.New(m, wormhole.DefaultConfig())
	n.SetObserver(u)
	n.Send(0, 7, 2000, nil, nil)
	if _, err := n.RunUntilIdle(1 << 21); err != nil {
		t.Fatal(err)
	}
	hm := MeshHeatmap(m, u)
	if !strings.Contains(hm, "9") {
		t.Fatalf("no hot cell rendered:\n%s", hm)
	}
	if !strings.Contains(hm, ".") {
		t.Fatalf("no idle cell rendered:\n%s", hm)
	}
	lines := strings.Split(strings.TrimSpace(hm), "\n")
	if len(lines) != 9 { // header + 8 rows
		t.Fatalf("heatmap has %d lines:\n%s", len(lines), hm)
	}
}

// TestMeshHeatmapNon2D degrades gracefully.
func TestMeshHeatmapNon2D(t *testing.T) {
	m := mesh.New(4, 4, 4)
	u := NewChannelUsage(m)
	if hm := MeshHeatmap(m, u); !strings.Contains(hm, "requires a 2-D mesh") {
		t.Fatalf("unexpected: %q", hm)
	}
}

// TestObserverDoesNotPerturbSimulation: results with and without an
// observer are identical.
func TestObserverDoesNotPerturbSimulation(t *testing.T) {
	run := func(obs wormhole.Observer) []int64 {
		m := mesh.New2D(8, 8)
		n := wormhole.New(m, wormhole.DefaultConfig())
		if obs != nil {
			n.SetObserver(obs)
		}
		var worms []*wormhole.Worm
		for i := 0; i < 12; i++ {
			worms = append(worms, n.Send(wormhole.NodeID(i), wormhole.NodeID(63-i), 900, nil, nil))
		}
		if _, err := n.RunUntilIdle(1 << 22); err != nil {
			t.Fatal(err)
		}
		var out []int64
		for _, w := range worms {
			out = append(out, w.ArrivedAt, w.BlockedCycles)
		}
		return out
	}
	a := run(nil)
	b := run(Multi{NewChannelUsage(mesh.New2D(8, 8)), NewTimeline(), NewBlockLog(mesh.New2D(8, 8), 100)})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("observer perturbed the simulation")
		}
	}
}
