// Package trace provides fabric observers and renderers for analyzing
// simulated multicasts: per-channel utilization, per-message timelines,
// blocked-event logs, and an ASCII link-utilization heatmap for 2-D
// meshes. It is what cmd/netsim's -trace and -heatmap flags are built
// on, and what the tests use to localize contention when a supposedly
// contention-free run blocks.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mesh"
	"repro/internal/wormhole"
)

// ChannelUsage accumulates, per channel, how long it was owned and how
// often headers blocked on it.
type ChannelUsage struct {
	topo       wormhole.Topology
	acquiredAt []int64
	busy       []int64
	acquires   []int64
	blocked    []int64
}

// NewChannelUsage builds a usage observer for a fabric's topology.
func NewChannelUsage(topo wormhole.Topology) *ChannelUsage {
	n := topo.NumChannels()
	return &ChannelUsage{
		topo:       topo,
		acquiredAt: make([]int64, n),
		busy:       make([]int64, n),
		acquires:   make([]int64, n),
		blocked:    make([]int64, n),
	}
}

// Acquire implements wormhole.Observer.
func (u *ChannelUsage) Acquire(now int64, _ *wormhole.Worm, c wormhole.ChannelID) {
	u.acquiredAt[c] = now
	u.acquires[c]++
}

// Release implements wormhole.Observer.
func (u *ChannelUsage) Release(now int64, _ *wormhole.Worm, c wormhole.ChannelID) {
	u.busy[c] += now - u.acquiredAt[c]
}

// Blocked implements wormhole.Observer.
func (u *ChannelUsage) Blocked(_ int64, _ *wormhole.Worm, c wormhole.ChannelID, _ *wormhole.Worm) {
	u.blocked[c]++
}

// Complete implements wormhole.Observer.
func (u *ChannelUsage) Complete(int64, *wormhole.Worm) {}

// BusyCycles returns how long the channel was owned in total.
func (u *ChannelUsage) BusyCycles(c wormhole.ChannelID) int64 { return u.busy[c] }

// Acquires returns how many worms owned the channel.
func (u *ChannelUsage) Acquires(c wormhole.ChannelID) int64 { return u.acquires[c] }

// BlockedOn returns how many header-cycles were spent blocked wanting
// this channel.
func (u *ChannelUsage) BlockedOn(c wormhole.ChannelID) int64 { return u.blocked[c] }

// Hottest returns the n busiest channels in descending busy order.
func (u *ChannelUsage) Hottest(n int) []wormhole.ChannelID {
	ids := make([]wormhole.ChannelID, len(u.busy))
	for i := range ids {
		ids[i] = wormhole.ChannelID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		if u.busy[ids[a]] != u.busy[ids[b]] {
			return u.busy[ids[a]] > u.busy[ids[b]]
		}
		return ids[a] < ids[b]
	})
	if n > len(ids) {
		n = len(ids)
	}
	return ids[:n]
}

// Report renders the n hottest channels as text.
func (u *ChannelUsage) Report(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s %9s %9s\n", "channel", "busy", "acquires", "blocked")
	for _, c := range u.Hottest(n) {
		if u.busy[c] == 0 {
			break
		}
		fmt.Fprintf(&b, "%-28s %10d %9d %9d\n", u.topo.DescribeChannel(c), u.busy[c], u.acquires[c], u.blocked[c])
	}
	return b.String()
}

// Span is one message's lifetime in the fabric.
type Span struct {
	ID            int64
	Src, Dst      wormhole.NodeID
	Bytes         int
	Start, End    int64
	BlockedCycles int64
}

// Timeline records a Span per completed message, in completion order.
type Timeline struct {
	started map[int64]int64
	Spans   []Span
}

// NewTimeline builds a message-timeline observer.
func NewTimeline() *Timeline {
	return &Timeline{started: make(map[int64]int64)}
}

// Acquire implements wormhole.Observer; the first acquisition marks the
// message's start.
func (t *Timeline) Acquire(now int64, w *wormhole.Worm, _ wormhole.ChannelID) {
	if _, ok := t.started[w.ID]; !ok {
		t.started[w.ID] = now
	}
}

// Release implements wormhole.Observer.
func (t *Timeline) Release(int64, *wormhole.Worm, wormhole.ChannelID) {}

// Blocked implements wormhole.Observer.
func (t *Timeline) Blocked(int64, *wormhole.Worm, wormhole.ChannelID, *wormhole.Worm) {}

// Complete implements wormhole.Observer.
func (t *Timeline) Complete(now int64, w *wormhole.Worm) {
	t.Spans = append(t.Spans, Span{
		ID:            w.ID,
		Src:           w.Src,
		Dst:           w.Dst,
		Bytes:         w.Bytes,
		Start:         t.started[w.ID],
		End:           now,
		BlockedCycles: w.BlockedCycles,
	})
	delete(t.started, w.ID)
}

// Gantt renders the spans as an ASCII Gantt chart with the given width.
func (t *Timeline) Gantt(width int) string {
	if len(t.Spans) == 0 {
		return "(no messages)\n"
	}
	if width < 10 {
		width = 10
	}
	minT, maxT := t.Spans[0].Start, t.Spans[0].End
	for _, s := range t.Spans {
		if s.Start < minT {
			minT = s.Start
		}
		if s.End > maxT {
			maxT = s.End
		}
	}
	span := maxT - minT
	if span <= 0 {
		span = 1
	}
	scale := func(x int64) int {
		p := int((x - minT) * int64(width) / span)
		if p >= width {
			p = width - 1
		}
		return p
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cycles %d..%d, one column = %.1f cycles\n", minT, maxT, float64(span)/float64(width))
	ordered := append([]Span(nil), t.Spans...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Start < ordered[j].Start })
	for _, s := range ordered {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		from, to := scale(s.Start), scale(s.End)
		for i := from; i <= to; i++ {
			row[i] = '='
		}
		mark := ' '
		if s.BlockedCycles > 0 {
			mark = '!'
		}
		fmt.Fprintf(&b, "%4d->%-4d |%s|%c\n", s.Src, s.Dst, row, mark)
	}
	return b.String()
}

// BlockLog records every blocked-header event.
type BlockLog struct {
	topo   wormhole.Topology
	Events []BlockEvent
	// Cap bounds memory; once reached, further events only count.
	Cap     int
	Dropped int64
}

// BlockEvent is one cycle of one header waiting on an owned channel.
type BlockEvent struct {
	Now     int64
	Waiter  int64 // worm ID
	Holder  int64 // worm ID
	Channel wormhole.ChannelID
}

// NewBlockLog builds a block-event log capped at capacity events.
func NewBlockLog(topo wormhole.Topology, capacity int) *BlockLog {
	return &BlockLog{topo: topo, Cap: capacity}
}

// Acquire implements wormhole.Observer.
func (l *BlockLog) Acquire(int64, *wormhole.Worm, wormhole.ChannelID) {}

// Release implements wormhole.Observer.
func (l *BlockLog) Release(int64, *wormhole.Worm, wormhole.ChannelID) {}

// Blocked implements wormhole.Observer.
func (l *BlockLog) Blocked(now int64, w *wormhole.Worm, c wormhole.ChannelID, holder *wormhole.Worm) {
	if l.Cap > 0 && len(l.Events) >= l.Cap {
		l.Dropped++
		return
	}
	ev := BlockEvent{Now: now, Waiter: w.ID, Channel: c}
	if holder != nil {
		ev.Holder = holder.ID
	}
	l.Events = append(l.Events, ev)
}

// Complete implements wormhole.Observer.
func (l *BlockLog) Complete(int64, *wormhole.Worm) {}

// String renders the log.
func (l *BlockLog) String() string {
	var b strings.Builder
	for _, e := range l.Events {
		fmt.Fprintf(&b, "t=%-8d worm %d blocked on %s (held by worm %d)\n",
			e.Now, e.Waiter, l.topo.DescribeChannel(e.Channel), e.Holder)
	}
	if l.Dropped > 0 {
		fmt.Fprintf(&b, "(+%d events dropped)\n", l.Dropped)
	}
	return b.String()
}

// Multi fans fabric events out to several observers.
type Multi []wormhole.Observer

// Acquire implements wormhole.Observer.
func (m Multi) Acquire(now int64, w *wormhole.Worm, c wormhole.ChannelID) {
	for _, o := range m {
		o.Acquire(now, w, c)
	}
}

// Release implements wormhole.Observer.
func (m Multi) Release(now int64, w *wormhole.Worm, c wormhole.ChannelID) {
	for _, o := range m {
		o.Release(now, w, c)
	}
}

// Blocked implements wormhole.Observer.
func (m Multi) Blocked(now int64, w *wormhole.Worm, c wormhole.ChannelID, h *wormhole.Worm) {
	for _, o := range m {
		o.Blocked(now, w, c, h)
	}
}

// Complete implements wormhole.Observer.
func (m Multi) Complete(now int64, w *wormhole.Worm) {
	for _, o := range m {
		o.Complete(now, w)
	}
}

// MeshHeatmap renders per-router link utilization of a 2-D mesh as an
// ASCII grid: each router cell shows the decile (0-9) of its busiest
// outgoing link relative to the hottest link in the fabric, '.' for
// idle. Useful for seeing where a multicast concentrated traffic.
func MeshHeatmap(m *mesh.Mesh, u *ChannelUsage) string {
	dims := m.Dims()
	if len(dims) != 2 {
		return "(heatmap requires a 2-D mesh)\n"
	}
	w, h := dims[0], dims[1]
	var peak int64
	cell := make([]int64, m.NumNodes())
	for n := 0; n < m.NumNodes(); n++ {
		var hot int64
		for d := 0; d < 2; d++ {
			for s := 0; s < 2; s++ {
				c := m.LinkChannel(n, d, s)
				if c == wormhole.NoChannel {
					continue
				}
				if b := u.BusyCycles(c); b > hot {
					hot = b
				}
			}
		}
		cell[n] = hot
		if hot > peak {
			peak = hot
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "link utilization heatmap (peak = %d busy cycles):\n", peak)
	for y := h - 1; y >= 0; y-- {
		fmt.Fprintf(&b, "%3d ", y)
		for x := 0; x < w; x++ {
			v := cell[m.Addr(x, y)]
			if v == 0 || peak == 0 {
				b.WriteByte('.')
			} else {
				d := v * 9 / peak
				b.WriteByte(byte('0' + d))
			}
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

var (
	_ wormhole.Observer = (*ChannelUsage)(nil)
	_ wormhole.Observer = (*Timeline)(nil)
	_ wormhole.Observer = (*BlockLog)(nil)
	_ wormhole.Observer = Multi(nil)
)
