package repro_test

import (
	"testing"

	"repro"
)

// TestFacadeFigure1: the public API reproduces the paper's worked example.
func TestFacadeFigure1(t *testing.T) {
	f, err := repro.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if f.OptLatency != 130 || f.UMeshLat != 165 {
		t.Fatalf("figure 1 = %d/%d, want 130/165", f.OptLatency, f.UMeshLat)
	}
}

// TestFacadeOptTable: DP results through the facade.
func TestFacadeOptTable(t *testing.T) {
	tab := repro.NewOptTable(8, 20, 55)
	if tab.T(8) != 130 {
		t.Fatalf("T(8) = %d", tab.T(8))
	}
	if got := repro.OptimalLatency(8, 20, 55); got != 130 {
		t.Fatalf("oracle = %d", got)
	}
	if got := repro.Latency(repro.BinomialTable{Max: 8}, 8, 20, 55); got != 165 {
		t.Fatalf("binomial = %d", got)
	}
}

// TestFacadeSimulationPipeline: measure, plan, run — the user journey —
// on both fabrics through public identifiers only.
func TestFacadeSimulationPipeline(t *testing.T) {
	soft := repro.DefaultSoftware()
	cfg := repro.RunConfig{Software: soft}
	fabric := repro.DefaultFabricConfig()

	m := repro.NewMesh2D(8, 8)
	tend, err := repro.MeasureUnicast(repro.NewNetwork(m, fabric), 0, 63, 1024, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addrs := []int{0, 9, 18, 27, 36, 45, 54, 63}
	ch := repro.NewChain(addrs, m.DimOrderLess)
	root, ok := ch.Index(0)
	if !ok {
		t.Fatal("source lost")
	}
	tab := repro.NewOptTable(len(ch), soft.Hold.At(1024), tend)
	res, err := repro.RunMulticast(repro.NewNetwork(m, fabric), tab, ch, root, 1024, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockedCycles != 0 {
		t.Fatalf("OPT-mesh blocked %d cycles", res.BlockedCycles)
	}
	if res.Latency <= tend {
		t.Fatalf("multicast (%d) not longer than a unicast (%d)", res.Latency, tend)
	}

	b := repro.NewBMIN(64, repro.AscentStraight)
	chB := repro.NewChain(addrs, b.LexLess)
	resB, err := repro.RunMulticast(repro.NewNetwork(b, fabric), tab, chB, 0, 1024, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resB.BlockedCycles != 0 {
		t.Fatalf("OPT-min blocked %d cycles", resB.BlockedCycles)
	}
}

// TestFacadeSuiteSweep: a tiny sweep through the experiment API.
func TestFacadeSuiteSweep(t *testing.T) {
	s := repro.NewMeshSuite(8, 8)
	s.Trials = 2
	tab, err := s.SweepSizes("facade", 8, []int{1024}, repro.MeshAlgorithms())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Algorithms) != 3 {
		t.Fatalf("table shape wrong: %+v", tab)
	}
	if tab.Format() == "" || tab.CSV() == "" {
		t.Fatal("rendering empty")
	}
}

// TestFacadeExtensions exercises the extension surface: torus,
// hypercube, butterfly, collectives, tuner, checker, tracing.
func TestFacadeExtensions(t *testing.T) {
	soft := repro.DefaultSoftware()
	cfg := repro.RunConfig{Software: soft}
	fabric := repro.DefaultFabricConfig()

	// Hypercube multicast through the facade.
	hc := repro.NewHypercube(5)
	addrs := []int{0, 3, 7, 12, 17, 21, 26, 31}
	ch := repro.NewChain(addrs, hc.DimOrderLess)
	root, _ := ch.Index(0)
	tab := repro.NewOptTable(len(ch), 700, 1800)
	res, err := repro.RunMulticast(repro.NewNetwork(hc, fabric), tab, ch, root, 1024, cfg)
	if err != nil || res.BlockedCycles != 0 {
		t.Fatalf("hypercube: res=%+v err=%v", res, err)
	}

	// Torus with a tracing observer.
	tr := repro.NewTorus2D(8, 8)
	net := repro.NewNetwork(tr, fabric)
	usage := repro.NewChannelUsage(tr)
	var obs repro.Observer = usage
	net.SetObserver(obs)
	chT := repro.NewChain(addrs, tr.DimOrderLess)
	rootT, _ := chT.Index(0)
	if _, err := repro.RunMulticast(net, tab, chT, rootT, 1024, cfg); err != nil {
		t.Fatalf("torus: %v", err)
	}

	// Scatter-allgather on the mesh.
	m := repro.NewMesh2D(8, 8)
	chM := repro.NewChain(addrs, m.DimOrderLess)
	scr, err := repro.ScatterAllgather(repro.NewNetwork(m, fabric), chM, 8192, cfg)
	if err != nil || scr.Latency <= 0 {
		t.Fatalf("scatter: res=%+v err=%v", scr, err)
	}

	// Temporal tuner on the butterfly.
	bf := repro.NewButterfly(32)
	tuned, err := repro.TuneOrdering(repro.TuneConfig{
		Topo: bf, Software: soft, Iterations: 60, Seed: 4,
	}, repro.NewOptTable(8, 700, 1800), addrs, 1024, 700, 1800)
	if err != nil || len(tuned.Chain) != len(addrs) {
		t.Fatalf("tune: res=%+v err=%v", tuned, err)
	}

	// Static checker on the mesh chain.
	k := &repro.ContentionChecker{Topo: m, Software: soft, Slack: 50}
	conflicts, err := k.Check(tab, chM, 0, 1024, 700, 1800)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 0 {
		t.Fatalf("OPT-mesh chain conflicted: %v", conflicts[0])
	}

	// Concurrent batch.
	groups := []repro.Group{
		{Tab: tab, Chain: repro.NewChain([]int{0, 9, 18, 27}, m.DimOrderLess), Root: 0, Bytes: 512},
		{Tab: tab, Chain: repro.NewChain([]int{36, 45, 54, 63}, m.DimOrderLess), Root: 0, Bytes: 512},
	}
	batch, err := repro.RunConcurrent(repro.NewNetwork(m, fabric), groups, cfg)
	if err != nil || len(batch) != 2 {
		t.Fatalf("concurrent: %v", err)
	}

	// Suites for every platform construct.
	for _, s := range []*repro.Suite{
		repro.NewMeshSuite(8, 8), repro.NewBMINSuite(64, repro.AscentStraight),
		repro.NewHypercubeSuite(5), repro.NewButterflySuite(64), repro.NewTorusSuite(8, 8),
	} {
		if s.Platform.Nodes == 0 {
			t.Fatal("suite with empty platform")
		}
	}
}

// TestFacadeFit: model fitting through the facade.
func TestFacadeFit(t *testing.T) {
	truth := repro.Linear{Fixed: 100, PerByte: 0.5}
	pts := []repro.Point{}
	for _, m := range []int{0, 100, 1000} {
		pts = append(pts, repro.Point{Bytes: m, T: truth.At(m)})
	}
	got, err := repro.Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(500) != truth.At(500) {
		t.Fatalf("fit drifted: %v vs %v", got, truth)
	}
}
